#include "apps/mst.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/union_find.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

/// A spanning tree has n-1 edges and connects everything.
void expect_spanning(const MstResult& mst, std::size_t n) {
  ASSERT_EQ(mst.edges.size(), n - 1);
  UnionFind uf(n);
  for (const MstEdge& e : mst.edges) {
    EXPECT_TRUE(uf.unite(e.u, e.v)) << "cycle edge " << e.u << "-" << e.v;
  }
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(ExactMst, TrivialCases) {
  EXPECT_TRUE(exact_mst(PointSet(1, 2)).edges.empty());
  EXPECT_TRUE(exact_mst(PointSet{}).edges.empty());
}

TEST(ExactMst, KnownSquare) {
  // Unit square: MST cost 3.
  PointSet points(4, 2, {0, 0, 1, 0, 0, 1, 1, 1});
  const MstResult mst = exact_mst(points);
  expect_spanning(mst, 4);
  EXPECT_NEAR(mst.total_length, 3.0, 1e-12);
}

TEST(ExactMst, CollinearPoints) {
  PointSet points(4, 1, {0, 10, 3, 7});
  const MstResult mst = exact_mst(points);
  expect_spanning(mst, 4);
  EXPECT_NEAR(mst.total_length, 10.0, 1e-12);
}

TEST(ExactMst, MatchesKruskalOnRandomInput) {
  const PointSet points = generate_uniform_cube(40, 3, 10.0, 3);
  const MstResult prim = exact_mst(points);
  // Kruskal reference.
  struct E {
    double w;
    std::size_t u, v;
  };
  std::vector<E> edges;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      edges.push_back({l2_distance(points[i], points[j]), i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const E& a, const E& b) { return a.w < b.w; });
  UnionFind uf(points.size());
  double kruskal = 0.0;
  for (const E& e : edges) {
    if (uf.unite(e.u, e.v)) kruskal += e.w;
  }
  EXPECT_NEAR(prim.total_length, kruskal, 1e-9);
}

TEST(TreeMst, SpansAndDominatesExact) {
  const PointSet points = generate_uniform_cube(120, 4, 20.0, 5);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 7;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());

  const MstResult approx = tree_mst(embedding->tree, points);
  const MstResult exact = exact_mst(points);
  expect_spanning(approx, points.size());
  // Any spanning tree costs at least the MST.
  EXPECT_GE(approx.total_length, exact.total_length - 1e-9);
}

TEST(TreeMst, ApproximationIsReasonable) {
  // The O(log^1.5 n) guarantee is about the tree metric; in practice the
  // representative construction lands within a small factor on uniform
  // data. We assert a loose ceiling to catch regressions.
  const PointSet points = generate_uniform_cube(150, 3, 20.0, 11);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 13;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  const double approx = tree_mst(embedding->tree, points).total_length;
  const double exact = exact_mst(points).total_length;
  EXPECT_LT(approx / exact, 10.0);
}

TEST(TreeMst, MismatchedInputsThrow) {
  const PointSet points = generate_uniform_cube(20, 3, 10.0, 17);
  EmbedOptions options;
  options.use_fjlt = false;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  const PointSet fewer = generate_uniform_cube(10, 3, 10.0, 19);
  EXPECT_THROW((void)tree_mst(embedding->tree, fewer), MpteError);
}

TEST(TreeMst, ClusteredDataStaysTight) {
  // On two far blobs the tree MST must use exactly one long edge.
  const PointSet points = generate_two_blobs(60, 3, 1000.0, 1.0, 23);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 29;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  const MstResult approx = tree_mst(embedding->tree, points);
  std::size_t long_edges = 0;
  for (const MstEdge& e : approx.edges) {
    if (e.length > 500.0) ++long_edges;
  }
  EXPECT_EQ(long_edges, 1u);
}

}  // namespace
}  // namespace mpte
