#include "tree/hst_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Hst sample_tree(std::uint64_t seed = 3) {
  const PointSet points = generate_uniform_cube(60, 4, 30.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result->tree);
}

void expect_same_metric(const Hst& a, const Hst& b) {
  ASSERT_EQ(a.num_points(), b.num_points());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    for (std::size_t j = i + 1; j < a.num_points(); ++j) {
      EXPECT_EQ(a.distance(i, j), b.distance(i, j));
    }
  }
}

TEST(HstIo, BytesRoundTrip) {
  const Hst tree = sample_tree();
  const auto bytes = hst_to_bytes(tree);
  const Hst restored = hst_from_bytes(bytes);
  EXPECT_TRUE(restored.validate().ok());
  expect_same_metric(tree, restored);
}

TEST(HstIo, PreservesNodeFields) {
  const Hst tree = sample_tree(7);
  const Hst restored = hst_from_bytes(hst_to_bytes(tree));
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_EQ(tree.node(i).cluster_id, restored.node(i).cluster_id);
    EXPECT_EQ(tree.node(i).parent, restored.node(i).parent);
    EXPECT_EQ(tree.node(i).level, restored.node(i).level);
    EXPECT_EQ(tree.node(i).edge_weight, restored.node(i).edge_weight);
    EXPECT_EQ(tree.node(i).point, restored.node(i).point);
    EXPECT_EQ(tree.node(i).subtree_size, restored.node(i).subtree_size);
  }
}

TEST(HstIo, RejectsBadMagic) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsBadVersion) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes[4] = 0x7f;  // version field
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsTruncatedInput) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsCorruptedStructure) {
  // Corrupt a parent pointer deep inside; validate() must catch it.
  const Hst tree = sample_tree(11);
  auto bytes = hst_to_bytes(tree);
  // Stream: magic(4) version(4) count(8), then 40-byte WireNodes laid out
  // cluster_id(8) point(8) parent(4) level(4) edge_weight(8)
  // subtree_size(4) padding(4). Flip node 1's subtree_size low byte.
  const std::size_t node1 = 4 + 4 + 8 + 40;
  bytes[node1 + 32] ^= 0x3f;
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, FileRoundTrip) {
  const Hst tree = sample_tree(13);
  const std::string path = "/tmp/mpte_hst_io_test.bin";
  save_hst(tree, path);
  const Hst restored = load_hst(path);
  expect_same_metric(tree, restored);
  std::remove(path.c_str());
}

TEST(HstIo, MissingFileThrows) {
  EXPECT_THROW((void)load_hst("/nonexistent/dir/tree.bin"), MpteError);
  const auto result = try_load_hst("/nonexistent/dir/tree.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(HstIo, RejectsOnDiskCorruptionAndTruncation) {
  const Hst tree = sample_tree(19);
  const std::string path = "/tmp/mpte_hst_io_corrupt.bin";
  save_hst(tree, path);

  // Flip one payload byte: the checksum envelope must reject the file.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(40);
    const char byte = static_cast<char>(f.get());
    f.seekp(40);
    f.put(static_cast<char>(byte ^ 0x55));
  }
  auto result = try_load_hst(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().to_string().find("checksum"),
            std::string::npos);
  EXPECT_THROW((void)load_hst(path), MpteError);

  // Truncate the file below its declared payload size.
  save_hst(tree, path);
  std::filesystem::resize_file(path, 24);
  result = try_load_hst(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(HstIo, LoadsPreEnvelopeLegacyFiles) {
  // Files written before the checksum envelope existed are the raw
  // payload; they must still load.
  const Hst tree = sample_tree(23);
  const std::string path = "/tmp/mpte_hst_io_legacy.bin";
  const auto bytes = hst_to_bytes(tree);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const Hst restored = load_hst(path);
  expect_same_metric(tree, restored);
  std::remove(path.c_str());
}

TEST(HstIo, VersionTwoRoundTripsStableIds) {
  const Hst tree = sample_tree(29);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < tree.num_points(); ++i) {
    ids.push_back(1000 + 7 * static_cast<std::uint64_t>(i));
  }
  Serializer out;
  serialize_hst(tree, ids, out);
  std::vector<std::uint64_t> restored_ids;
  const Hst restored = hst_from_bytes(out.take(), &restored_ids);
  expect_same_metric(tree, restored);
  EXPECT_EQ(restored_ids, ids);
}

TEST(HstIo, VersionTwoWritesDenseIdsForEmptySpan) {
  const Hst tree = sample_tree(31);
  Serializer out;
  serialize_hst(tree, std::span<const std::uint64_t>(), out);
  std::vector<std::uint64_t> ids;
  (void)hst_from_bytes(out.take(), &ids);
  ASSERT_EQ(ids.size(), tree.num_points());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(HstIo, LegacyPayloadSynthesizesDenseIds) {
  // A version-1 buffer carries no ids; the reader must hand back the
  // dense identity so pre-dyn files keep working under the new API.
  const Hst tree = sample_tree(37);
  std::vector<std::uint64_t> ids;
  const Hst restored = hst_from_bytes(hst_to_bytes(tree), &ids);
  expect_same_metric(tree, restored);
  ASSERT_EQ(ids.size(), tree.num_points());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(HstIo, VersionTwoRejectsIdCountMismatch) {
  const Hst tree = sample_tree(41);
  const std::vector<std::uint64_t> wrong(tree.num_points() + 1, 9);
  Serializer out;
  EXPECT_THROW(serialize_hst(tree, wrong, out), MpteError);
}

TEST(HstIo, VersionTwoFileLoadsThroughLegacyReader) {
  // load_hst ignores ids but must still accept a version-2 file.
  const Hst tree = sample_tree(43);
  std::vector<std::uint64_t> ids(tree.num_points());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 50 + i;
  const std::string path = "/tmp/mpte_hst_io_v2.bin";
  save_hst(tree, ids, path);
  expect_same_metric(tree, load_hst(path));
  std::remove(path.c_str());
}

TEST(HstIo, SizeIsCompact) {
  // The serialized tree is O(n) — far below the O(n*d) input. 60 points,
  // <= ~3 nodes/point after pruning, 48B/node.
  const auto bytes = hst_to_bytes(sample_tree(17));
  EXPECT_LT(bytes.size(), 60u * 64u * 4u);
}

}  // namespace
}  // namespace mpte
