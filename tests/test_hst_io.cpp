#include "tree/hst_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Hst sample_tree(std::uint64_t seed = 3) {
  const PointSet points = generate_uniform_cube(60, 4, 30.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result->tree);
}

void expect_same_metric(const Hst& a, const Hst& b) {
  ASSERT_EQ(a.num_points(), b.num_points());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    for (std::size_t j = i + 1; j < a.num_points(); ++j) {
      EXPECT_EQ(a.distance(i, j), b.distance(i, j));
    }
  }
}

TEST(HstIo, BytesRoundTrip) {
  const Hst tree = sample_tree();
  const auto bytes = hst_to_bytes(tree);
  const Hst restored = hst_from_bytes(bytes);
  EXPECT_TRUE(restored.validate().ok());
  expect_same_metric(tree, restored);
}

TEST(HstIo, PreservesNodeFields) {
  const Hst tree = sample_tree(7);
  const Hst restored = hst_from_bytes(hst_to_bytes(tree));
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    EXPECT_EQ(tree.node(i).cluster_id, restored.node(i).cluster_id);
    EXPECT_EQ(tree.node(i).parent, restored.node(i).parent);
    EXPECT_EQ(tree.node(i).level, restored.node(i).level);
    EXPECT_EQ(tree.node(i).edge_weight, restored.node(i).edge_weight);
    EXPECT_EQ(tree.node(i).point, restored.node(i).point);
    EXPECT_EQ(tree.node(i).subtree_size, restored.node(i).subtree_size);
  }
}

TEST(HstIo, RejectsBadMagic) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsBadVersion) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes[4] = 0x7f;  // version field
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsTruncatedInput) {
  auto bytes = hst_to_bytes(sample_tree());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, RejectsCorruptedStructure) {
  // Corrupt a parent pointer deep inside; validate() must catch it.
  const Hst tree = sample_tree(11);
  auto bytes = hst_to_bytes(tree);
  // Stream: magic(4) version(4) count(8), then 40-byte WireNodes laid out
  // cluster_id(8) point(8) parent(4) level(4) edge_weight(8)
  // subtree_size(4) padding(4). Flip node 1's subtree_size low byte.
  const std::size_t node1 = 4 + 4 + 8 + 40;
  bytes[node1 + 32] ^= 0x3f;
  EXPECT_THROW((void)hst_from_bytes(bytes), MpteError);
}

TEST(HstIo, FileRoundTrip) {
  const Hst tree = sample_tree(13);
  const std::string path = "/tmp/mpte_hst_io_test.bin";
  save_hst(tree, path);
  const Hst restored = load_hst(path);
  expect_same_metric(tree, restored);
  std::remove(path.c_str());
}

TEST(HstIo, MissingFileThrows) {
  EXPECT_THROW((void)load_hst("/nonexistent/dir/tree.bin"), MpteError);
}

TEST(HstIo, SizeIsCompact) {
  // The serialized tree is O(n) — far below the O(n*d) input. 60 points,
  // <= ~3 nodes/point after pruning, 48B/node.
  const auto bytes = hst_to_bytes(sample_tree(17));
  EXPECT_LT(bytes.size(), 60u * 64u * 4u);
}

}  // namespace
}  // namespace mpte
