// mpte::obs — tracer, metrics registry, and profiling hooks.
//
// The load-bearing test is ObservationOnly: the golden-seed embedding
// fingerprint (see test_mpc_channels.cpp) must be byte-identical with the
// tracer enabled and disabled, at 1 and 8 cluster threads — spans observe
// the pipeline, they never participate in it.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "tree/hst_io.hpp"

namespace mpte::obs {
namespace {

// ---------------------------------------------------------------- tracer

TEST(Tracer, DisabledByDefaultAndSpansAreFree) {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  ASSERT_FALSE(tracer.enabled());
  { const Span span("test", "never-recorded"); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, RecordsNestedSpansWithDepthAndContainment) {
  Tracer& tracer = Tracer::global();
  tracer.enable();
  {
    const Span outer("test", "outer", "n", 7);
    const Span inner("test", "inner");
  }
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close, so the inner span lands first.
  const SpanEvent& inner = events[0];
  const SpanEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.thread, inner.thread);
  EXPECT_STREQ(outer.arg_name, "n");
  EXPECT_EQ(outer.arg, 7u);
  // Containment: outer opens before inner and closes after it.
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.duration_us,
            inner.start_us + inner.duration_us);
}

TEST(Tracer, EightThreadsNestCorrectlyAndIndependently) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRepeats = 50;
  Tracer& tracer = Tracer::global();
  tracer.enable();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kRepeats; ++i) {
        const Span outer("test", "outer", "worker", t);
        const Span mid("test", "mid");
        const Span leaf("test", "leaf");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tracer.disable();

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), kThreads * kRepeats * 3);
  EXPECT_EQ(tracer.overwritten(), 0u);

  // Per recording thread: depth is per-thread state, so each thread must
  // see a clean leaf(2) -> mid(1) -> outer(0) close cycle regardless of
  // how the 8 threads interleave in the shared ring.
  std::map<std::uint32_t, std::vector<const SpanEvent*>> by_thread;
  for (const SpanEvent& event : events) {
    by_thread[event.thread].push_back(&event);
  }
  ASSERT_EQ(by_thread.size(), kThreads);
  for (const auto& [thread, spans] : by_thread) {
    ASSERT_EQ(spans.size(), kRepeats * 3) << "thread " << thread;
    for (std::size_t i = 0; i < spans.size(); i += 3) {
      EXPECT_EQ(spans[i]->name, "leaf");
      EXPECT_EQ(spans[i]->depth, 2u);
      EXPECT_EQ(spans[i + 1]->name, "mid");
      EXPECT_EQ(spans[i + 1]->depth, 1u);
      EXPECT_EQ(spans[i + 2]->name, "outer");
      EXPECT_EQ(spans[i + 2]->depth, 0u);
      // Each level closes inside its parent.
      EXPECT_LE(spans[i + 2]->start_us, spans[i + 1]->start_us);
      EXPECT_LE(spans[i + 1]->start_us, spans[i]->start_us);
    }
  }
}

TEST(Tracer, RingOverwritesOldestAndCountsLosses) {
  Tracer& tracer = Tracer::global();
  tracer.enable(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Span span("test", "span-" + std::to_string(i));
  }
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.overwritten(), 6u);
  // Oldest-first: the survivors are the last four spans, in order.
  EXPECT_EQ(events[0].name, "span-6");
  EXPECT_EQ(events[3].name, "span-9");
}

TEST(Tracer, ChromeTraceJsonIsStructurallyValid) {
  Tracer& tracer = Tracer::global();
  tracer.enable();
  {
    const Span span("test", R"(quoted "name" with \ backslash)", "arg", 3);
  }
  tracer.disable();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.rfind(R"({"traceEvents":[)", 0), 0u) << json;
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"test")"), std::string::npos);
  EXPECT_NE(json.find(R"(\"name\")"), std::string::npos);  // escaped quote
  EXPECT_NE(json.find(R"("arg":3)"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  // Balanced braces/brackets outside string literals.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Tracer, FlameSummaryAggregatesByDepthAndName) {
  Tracer& tracer = Tracer::global();
  tracer.enable();
  for (int i = 0; i < 3; ++i) {
    const Span outer("test", "loop");
    const Span inner("test", "body");
  }
  tracer.disable();
  const std::string summary = tracer.flame_summary();
  EXPECT_NE(summary.find("test/loop"), std::string::npos) << summary;
  EXPECT_NE(summary.find("  test/body"), std::string::npos) << summary;
  // Both rows aggregate all three calls.
  EXPECT_NE(summary.find("3"), std::string::npos);
}

// --------------------------------------------------------------- metrics

TEST(Histogram, BucketMathFollowsBitWidth) {
  Histogram h;
  // bucket 0: the value 0. bucket i >= 1: [2^(i-1), 2^i).
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(255);
  h.observe(256);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(3), 1u);  // 4
  EXPECT_EQ(h.bucket_count(8), 1u);  // 255
  EXPECT_EQ(h.bucket_count(9), 1u);  // 256
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(Histogram::bucket_upper_edge(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_edge(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_edge(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_edge(9), 511u);
  // A huge sample clamps into the last bucket instead of overflowing.
  h.observe(~0ull);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, QuantileMatchesLegacyServeMath) {
  // The serve tier's percentile math moved here verbatim: target index is
  // q*(count-1), the answer is the exclusive upper bound 2^b of the
  // bucket holding it (1.0 for the lowest buckets).
  Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(5);  // all in bucket 3
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
  h.observe(1000);  // bucket 10 -> upper bound 1024
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
  const Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Histogram merged;
  merged.merge_from(h);
  merged.merge_from(h);
  EXPECT_EQ(merged.count(), 2 * h.count());
  EXPECT_EQ(merged.sum(), 2 * h.sum());
}

TEST(Registry, HandlesAreStableAndCreationIsIdempotent) {
  Registry registry;
  Counter& a = registry.counter("mpte_test_total", "help");
  Counter& b = registry.counter("mpte_test_total", "ignored on reuse");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.counter_value("mpte_test_total"), 3u);
  // Distinct labels are distinct series under one family.
  Counter& x = registry.counter("mpte_labeled_total", "h", {{"k", "x"}});
  Counter& y = registry.counter("mpte_labeled_total", "h", {{"k", "y"}});
  EXPECT_NE(&x, &y);
  x.add(1);
  y.add(2);
  EXPECT_EQ(registry.counter_value("mpte_labeled_total", {{"k", "x"}}), 1u);
  EXPECT_EQ(registry.counter_value("mpte_labeled_total", {{"k", "y"}}), 2u);
  EXPECT_EQ(registry.counter_value("absent"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("absent"), 0.0);
}

TEST(Registry, PrometheusTextGolden) {
  Registry registry;
  registry.counter("mpte_demo_events_total", "Events seen.").add(42);
  registry
      .counter("mpte_demo_bytes_total", "Bytes by channel.",
               {{"channel", "emb/edges"}})
      .add(1024);
  registry.gauge("mpte_demo_depth", "Current depth.").set(2.5);
  Histogram& h =
      registry.histogram("mpte_demo_latency_us", "Latency histogram.");
  h.observe(0);
  h.observe(3);
  h.observe(3);
  const std::string expected =
      "# HELP mpte_demo_bytes_total Bytes by channel.\n"
      "# TYPE mpte_demo_bytes_total counter\n"
      "mpte_demo_bytes_total{channel=\"emb/edges\"} 1024\n"
      "# HELP mpte_demo_depth Current depth.\n"
      "# TYPE mpte_demo_depth gauge\n"
      "mpte_demo_depth 2.5\n"
      "# HELP mpte_demo_events_total Events seen.\n"
      "# TYPE mpte_demo_events_total counter\n"
      "mpte_demo_events_total 42\n"
      "# HELP mpte_demo_latency_us Latency histogram.\n"
      "# TYPE mpte_demo_latency_us histogram\n"
      "mpte_demo_latency_us_bucket{le=\"0\"} 1\n"
      "mpte_demo_latency_us_bucket{le=\"1\"} 1\n"
      "mpte_demo_latency_us_bucket{le=\"3\"} 3\n"
      "mpte_demo_latency_us_bucket{le=\"+Inf\"} 3\n"
      "mpte_demo_latency_us_sum 6\n"
      "mpte_demo_latency_us_count 3\n"
      "# EOF\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(Registry, LabelValuesAreEscaped) {
  Registry registry;
  registry
      .counter("mpte_esc_total", "h", {{"k", "quo\"te\\slash"}})
      .add(1);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find(R"(k="quo\"te\\slash")"), std::string::npos) << text;
}

// ---------------------------------------------- exporters stay in sync

TEST(Exporters, RoundStatsSummaryAndMetricsAgree) {
  mpc::Cluster cluster(mpc::ClusterConfig{4, 1 << 16, true});
  cluster.run_round(
      [](mpc::MachineContext& ctx) {
        ctx.send((ctx.id() + 1) % 4, std::vector<std::uint8_t>(64));
      },
      "ring");
  cluster.run_round([](mpc::MachineContext&) {}, "drain");

  Registry registry;
  cluster.stats().export_metrics(&registry);
  EXPECT_EQ(registry.counter_value("mpte_mpc_rounds_total"),
            cluster.stats().rounds());
  EXPECT_EQ(registry.counter_value("mpte_mpc_message_bytes_total"), 256u);
  EXPECT_EQ(
      registry.gauge_value("mpte_mpc_peak_local_bytes"),
      static_cast<double>(cluster.stats().peak_local_bytes()));
  // The human-readable summary renders from the same registry values.
  const std::string summary = cluster.stats().summary();
  EXPECT_NE(summary.find("rounds=2"), std::string::npos) << summary;
}

TEST(Exporters, ServeStatsLineAndMetricsAgree) {
  serve::ServiceStats stats;
  stats.submitted = 10;
  stats.completed = 9;
  stats.rejected_queue_full = 1;
  stats.rejected_deadline = 2;
  stats.qps = 123.45;
  stats.p50_ms = 1.5;
  stats.p99_ms = 8.0;
  stats.cache_hit_rate = 0.25;
  stats.queue_depth = 4;

  Registry registry;
  serve::export_service_stats(stats, &registry);
  EXPECT_EQ(registry.counter_value("mpte_serve_completed_total"), 9u);
  EXPECT_EQ(registry.counter_value("mpte_serve_rejected_queue_full_total"),
            1u);
  EXPECT_EQ(registry.counter_value("mpte_serve_rejected_deadline_total"),
            2u);

  // The one-line `stats` response routes through the same exporter, so
  // the numbers cannot drift from the `metrics` exposition.
  const std::string line = serve::format_stats(stats);
  EXPECT_NE(line.find("completed=9"), std::string::npos) << line;
  EXPECT_NE(line.find("rejected=3"), std::string::npos) << line;
  EXPECT_NE(line.find("qps=123.5"), std::string::npos) << line;
  EXPECT_NE(line.find("hit_rate=0.250"), std::string::npos) << line;
  EXPECT_NE(line.find("depth=4"), std::string::npos) << line;
}

// -------------------------------------------------------- profiling hooks

TEST(ProfilingHooks, AttributesEveryRoundAndForwardsToInner) {
  struct CountingHooks : mpc::ClusterHooks {
    std::size_t committed = 0;
    void round_committed(mpc::Cluster&, std::size_t) override {
      ++committed;
    }
  };
  CountingHooks inner;
  ProfilingHooks hooks(&inner);
  mpc::Cluster cluster(mpc::ClusterConfig{2, 1 << 16, true});
  cluster.set_hooks(&hooks);
  cluster.run_round([](mpc::MachineContext&) {}, "alpha");
  cluster.run_round([](mpc::MachineContext&) {}, "alpha");
  cluster.run_round([](mpc::MachineContext&) {}, "beta");

  EXPECT_EQ(inner.committed, 3u);
  EXPECT_EQ(hooks.totals().rounds, 3u);
  EXPECT_GE(hooks.totals().total_seconds(), 0.0);
  ASSERT_TRUE(hooks.by_label().contains("alpha"));
  EXPECT_EQ(hooks.by_label().at("alpha").rounds, 2u);
  EXPECT_EQ(hooks.by_label().at("beta").rounds, 1u);

  Registry registry;
  hooks.export_metrics(&registry);
  EXPECT_EQ(registry.counter_value("mpte_mpc_profile_rounds_total"), 3u);

  hooks.reset();
  EXPECT_EQ(hooks.totals().rounds, 0u);
  EXPECT_TRUE(hooks.by_label().empty());
}

// ------------------------------------------------- tracing is observation

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t golden_fingerprint(std::size_t threads) {
  mpc::ClusterConfig config;
  config.num_machines = 6;
  config.local_memory_bytes = 1 << 22;
  config.enforce_limits = true;
  config.num_threads = threads;
  mpc::Cluster cluster(config);

  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  MpcEmbedOptions options;
  options.seed = 99;
  options.num_buckets = 2;
  options.delta = 1024;
  options.use_fjlt = false;
  const auto result = mpc_embed(cluster, points, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  if (!result.ok()) return 0;

  const auto tree_bytes = hst_to_bytes(result->tree);
  std::uint64_t h =
      fnv1a(tree_bytes.data(), tree_bytes.size(), 1469598103934665603ull);
  const auto& raw = result->embedded_points.raw();
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
            raw.size() * sizeof(double), h);
  return h;
}

TEST(ObservationOnly, TracedEmbeddingIsByteIdenticalAtOneAndEightThreads) {
  // Same pinned configuration and expected hash as the GoldenSeed test in
  // test_mpc_channels.cpp: tracing must not perturb the embedding.
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  for (const std::size_t threads : {1u, 8u}) {
    Tracer::global().disable();
    EXPECT_EQ(golden_fingerprint(threads), kExpectedHash)
        << "tracing off, threads=" << threads;

    Tracer::global().enable();
    EXPECT_EQ(golden_fingerprint(threads), kExpectedHash)
        << "tracing on, threads=" << threads;
    Tracer::global().disable();

    // The traced run actually recorded the pipeline.
    const auto events = Tracer::global().snapshot();
    EXPECT_GT(events.size(), 10u) << "threads=" << threads;
    bool saw_pipeline = false, saw_round = false;
    for (const SpanEvent& event : events) {
      saw_pipeline |= event.name == "mpc_embed";
      saw_round |= event.category == "mpc";
    }
    EXPECT_TRUE(saw_pipeline);
    EXPECT_TRUE(saw_round);
  }
}

}  // namespace
}  // namespace mpte::obs
