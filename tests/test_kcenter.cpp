#include "apps/kcenter.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Embedding make_embedding(const PointSet& points, std::uint64_t seed) {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(CoveringRadius, KnownValues) {
  PointSet points(3, 1, {0.0, 4.0, 10.0});
  EXPECT_EQ(covering_radius(points, {0}), 10.0);
  EXPECT_EQ(covering_radius(points, {1}), 6.0);
  EXPECT_EQ(covering_radius(points, {0, 2}), 4.0);
  EXPECT_THROW((void)covering_radius(points, {}), MpteError);
}

TEST(Gonzalez, ValidatesAndCoversTrivially) {
  const PointSet points = generate_uniform_cube(20, 2, 10.0, 1);
  EXPECT_THROW((void)gonzalez_kcenter(points, 0), MpteError);
  const auto all = gonzalez_kcenter(points, 20);
  EXPECT_NEAR(all.radius, 0.0, 1e-12);
}

TEST(Gonzalez, IsTwoApproxOnLine) {
  // Optimal 2-center radius for {0, 1, 10, 11} is 0.5; Gonzalez <= 1.
  PointSet points(4, 1, {0.0, 1.0, 10.0, 11.0});
  const auto result = gonzalez_kcenter(points, 2);
  EXPECT_LE(result.radius, 1.0 + 1e-12);
}

TEST(Gonzalez, RadiusDecreasesInK) {
  const PointSet points = generate_uniform_cube(100, 3, 20.0, 3);
  double prev = 1e300;
  for (std::size_t k = 1; k <= 10; ++k) {
    const auto result = gonzalez_kcenter(points, k);
    EXPECT_LE(result.radius, prev + 1e-12);
    prev = result.radius;
  }
}

TEST(Gonzalez, DuplicateHeavyInputStops) {
  PointSet points(5, 1, {2.0, 2.0, 2.0, 7.0, 7.0});
  const auto result = gonzalez_kcenter(points, 4);
  EXPECT_LE(result.centers.size(), 4u);
  EXPECT_NEAR(result.radius, 0.0, 1e-12);
}

TEST(TreeKCenter, ValidatesInputs) {
  const PointSet points = generate_uniform_cube(20, 3, 10.0, 5);
  const Embedding embedding = make_embedding(points, 7);
  EXPECT_THROW((void)tree_kcenter(embedding.tree, points, 0), MpteError);
  const PointSet fewer = generate_uniform_cube(5, 3, 10.0, 9);
  EXPECT_THROW((void)tree_kcenter(embedding.tree, fewer, 2), MpteError);
}

TEST(TreeKCenter, RespectsKAndReturnsDistinctCenters) {
  const PointSet points = generate_uniform_cube(80, 3, 20.0, 11);
  const Embedding embedding = make_embedding(points, 13);
  for (const std::size_t k : {1u, 2u, 5u, 16u}) {
    const auto result = tree_kcenter(embedding.tree, points, k);
    EXPECT_GE(result.centers.size(), 1u);
    EXPECT_LE(result.centers.size(), k);
    std::set<std::size_t> unique(result.centers.begin(),
                                 result.centers.end());
    EXPECT_EQ(unique.size(), result.centers.size());
  }
}

TEST(TreeKCenter, RadiusShrinksWithK) {
  const PointSet points = generate_uniform_cube(120, 3, 20.0, 15);
  const Embedding embedding = make_embedding(points, 17);
  const double r1 = tree_kcenter(embedding.tree, points, 1).radius;
  const double r8 = tree_kcenter(embedding.tree, points, 8).radius;
  const double r32 = tree_kcenter(embedding.tree, points, 32).radius;
  EXPECT_LE(r8, r1 + 1e-12);
  EXPECT_LE(r32, r8 + 1e-12);
}

TEST(TreeKCenter, FindsPlantedClusters) {
  // k well-separated blobs: with k centers the radius must be on the blob
  // scale, far below the separation scale.
  const std::size_t k = 4;
  const PointSet points =
      generate_gaussian_clusters(120, 3, k, 2000.0, 1.0, 19);
  const Embedding embedding = make_embedding(points, 21);
  const auto tree_result = tree_kcenter(embedding.tree, points, k);
  const auto baseline = gonzalez_kcenter(points, k);
  EXPECT_LT(tree_result.radius, 100.0);
  // Within a distortion-sized factor of the 2-approx baseline.
  EXPECT_LT(tree_result.radius, 3.0 * baseline.radius + 1e-9);
}

TEST(TreeKCenter, WithinModerateFactorOfGonzalezOnUniform) {
  const PointSet points = generate_uniform_cube(150, 3, 30.0, 23);
  const Embedding embedding = make_embedding(points, 25);
  const auto tree_result = tree_kcenter(embedding.tree, points, 6);
  const auto baseline = gonzalez_kcenter(points, 6);
  EXPECT_LT(tree_result.radius, 3.0 * baseline.radius);
}

}  // namespace
}  // namespace mpte
