// Tests for the multi-process MPC backend (src/ipc/).
//
// The contract under test is byte-identity: Backend::kMultiProcess must
// produce exactly the stores, messages, RoundStats, and golden
// fingerprints of the in-process simulator, because everything after step
// execution runs on the shared coordinator-side code path. Plus the
// failure half: a worker that dies mid-round surfaces as a typed
// WorkerLost with no leaked child process, and a checkpointed run
// recovers from it byte-identically.
#include "ipc/proc_backend.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <thread>

#include "ckpt/manager.hpp"
#include "ckpt/recovery.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "ipc/frames.hpp"
#include "mpc/cluster.hpp"
#include "obs/metrics.hpp"
#include "tree/hst_io.hpp"

namespace mpte {
namespace {

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// The pinned configuration behind the repo-wide golden fingerprint
/// (test_mpc_channels.cpp GoldenSeed), parameterized by backend.
mpc::ClusterConfig golden_config(mpc::Backend backend, std::size_t threads) {
  mpc::ClusterConfig config;
  config.num_machines = 6;
  config.local_memory_bytes = 1 << 22;
  config.enforce_limits = true;
  config.num_threads = threads;
  config.backend = backend;
  return config;
}

Result<MpcEmbedding> golden_embed(mpc::Cluster& cluster) {
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  MpcEmbedOptions options;
  options.seed = 99;
  options.num_buckets = 2;
  options.delta = 1024;
  options.use_fjlt = false;
  return mpc_embed(cluster, points, options);
}

std::uint64_t embedding_hash(const MpcEmbedding& result) {
  const auto tree_bytes = hst_to_bytes(result.tree);
  std::uint64_t h =
      fnv1a(tree_bytes.data(), tree_bytes.size(), 1469598103934665603ull);
  const auto& raw = result.embedded_points.raw();
  return fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
               raw.size() * sizeof(double), h);
}

/// True once every child of this process has been reaped — the "no
/// zombies" assertion.
bool no_children_remain() {
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

/// A small 3-round pipeline exercising every delta kind: fresh keys,
/// overwrites, erases, and inbox-dependent writes.
void run_delta_pipeline(mpc::Cluster& cluster) {
  const std::size_t m = cluster.num_machines();
  cluster.run_round(
      [m](mpc::MachineContext& ctx) {
        ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 100});
        Serializer s;
        s.write(static_cast<std::uint64_t>(ctx.id() * 7));
        ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
      },
      "seed");
  cluster.run_round(
      [](mpc::MachineContext& ctx) {
        // Throw (not gtest-assert): under the proc backend this body runs
        // in a forked child, where only exceptions surface.
        if (ctx.inbox().size() != 1) throw MpteError("expected 1 message");
        ctx.store().set_blob("got", ctx.inbox()[0].payload);
        if (ctx.id() % 2 == 0) {
          ctx.store().erase("val");
        } else {
          ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 200});
        }
        ctx.store().set_value<std::uint64_t>("extra", ctx.id() + 40);
      },
      "mix");
  cluster.run_round(
      [](mpc::MachineContext& ctx) { ctx.store().erase("extra"); },
      "cleanup");
}

void expect_records_equal(const mpc::RoundStats& a, const mpc::RoundStats& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t r = 0; r < a.records().size(); ++r) {
    const auto& ra = a.records()[r];
    const auto& rb = b.records()[r];
    EXPECT_EQ(ra.label, rb.label) << "round " << r;
    EXPECT_EQ(ra.max_sent_bytes, rb.max_sent_bytes) << "round " << r;
    EXPECT_EQ(ra.max_recv_bytes, rb.max_recv_bytes) << "round " << r;
    EXPECT_EQ(ra.total_message_bytes, rb.total_message_bytes)
        << "round " << r;
    EXPECT_EQ(ra.max_resident_bytes, rb.max_resident_bytes) << "round " << r;
    EXPECT_EQ(ra.total_resident_bytes, rb.total_resident_bytes)
        << "round " << r;
    EXPECT_EQ(ra.violations, rb.violations) << "round " << r;
    EXPECT_EQ(ra.channel_bytes, rb.channel_bytes) << "round " << r;
  }
}

void expect_stores_equal(const mpc::Cluster& a, const mpc::Cluster& b) {
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (mpc::MachineId id = 0; id < a.num_machines(); ++id) {
    const auto ea = a.store(id).entries();
    const auto eb = b.store(id).entries();
    ASSERT_EQ(ea.size(), eb.size()) << "machine " << id;
    for (std::size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].first, eb[k].first) << "machine " << id;
      EXPECT_TRUE(ea[k].second == eb[k].second)
          << "machine " << id << " key " << ea[k].first;
    }
  }
}

TEST(BackendEquivalence, GoldenFingerprintAcrossBackendsAndThreads) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  for (const mpc::Backend backend :
       {mpc::Backend::kInProcess, mpc::Backend::kMultiProcess}) {
    for (const std::size_t threads : {1u, 8u}) {
      mpc::Cluster cluster(golden_config(backend, threads));
      const auto result = golden_embed(cluster);
      ASSERT_TRUE(result.ok()) << result.status().to_string();
      EXPECT_EQ(embedding_hash(*result), kExpectedHash)
          << "backend="
          << (backend == mpc::Backend::kInProcess ? "inproc" : "proc")
          << " threads=" << threads;
    }
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendEquivalence, RoundStatsAndChannelBytesIdentical) {
  mpc::Cluster inproc(golden_config(mpc::Backend::kInProcess, 1));
  mpc::Cluster proc(golden_config(mpc::Backend::kMultiProcess, 8));
  ASSERT_TRUE(golden_embed(inproc).ok());
  ASSERT_TRUE(golden_embed(proc).ok());
  expect_records_equal(inproc.stats(), proc.stats());
  EXPECT_EQ(inproc.stats().channel_totals(), proc.stats().channel_totals());
  expect_stores_equal(inproc, proc);
}

TEST(BackendEquivalence, StoreDeltasCoverEraseOverwriteAndFreshKeys) {
  mpc::ClusterConfig config;
  config.num_machines = 5;
  config.local_memory_bytes = 1 << 20;
  mpc::Cluster inproc(config);
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster proc(config);
  run_delta_pipeline(inproc);
  run_delta_pipeline(proc);
  expect_stores_equal(inproc, proc);
  expect_records_equal(inproc.stats(), proc.stats());
  // Spot-check the deltas actually shrank the wire: round 3 ("cleanup")
  // erased one key, so its result frames must not re-ship "got"/"val".
  const auto* backend =
      dynamic_cast<const ipc::ProcBackend*>(proc.round_executor());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->stats().rounds, 3u);
  EXPECT_TRUE(no_children_remain());
}

TEST(Frames, ResultRoundTripAndCorruptionDetection) {
  ipc::ResultFrame frame;
  frame.rank = 3;
  frame.round = 17;
  frame.store_delta.push_back(
      {"alpha", true, mpc::Buffer({1, 2, 3, 4, 5})});
  frame.store_delta.push_back({"beta", false, mpc::Buffer()});
  frame.fragments.resize(2);
  frame.fragments[1].push_back(mpc::Buffer({9, 9}));
  frame.channel_bytes["test/chan"] = 2;

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const mpc::Buffer encoded = ipc::encode_result(frame);
  ASSERT_TRUE(ipc::write_frame(sv[0], encoded).ok());
  auto decoded = ipc::read_frame(sv[1], 1000);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->kind, ipc::FrameKind::kResult);
  EXPECT_EQ(decoded->wire_bytes, encoded.size());
  EXPECT_EQ(decoded->result.rank, 3u);
  EXPECT_EQ(decoded->result.round, 17u);
  ASSERT_EQ(decoded->result.store_delta.size(), 2u);
  EXPECT_EQ(decoded->result.store_delta[0].key, "alpha");
  EXPECT_TRUE(decoded->result.store_delta[0].present);
  EXPECT_TRUE(decoded->result.store_delta[0].blob == frame.store_delta[0].blob);
  EXPECT_FALSE(decoded->result.store_delta[1].present);
  ASSERT_EQ(decoded->result.fragments.size(), 2u);
  EXPECT_TRUE(decoded->result.fragments[1][0] == frame.fragments[1][0]);
  EXPECT_EQ(decoded->result.channel_bytes, frame.channel_bytes);

  // Flip one payload byte: the envelope digest must reject the frame.
  std::vector<std::uint8_t> corrupt(encoded.data(),
                                    encoded.data() + encoded.size());
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(mpc::Buffer(corrupt).write_fd(sv[0]).ok());
  const auto rejected = ipc::read_frame(sv[1], 1000);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WorkerLoss, KillMidRoundThrowsTypedErrorAndLeavesNoZombies) {
  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.ipc.kill_at_round = 1;
  config.ipc.kill_rank = 2;
  mpc::Cluster cluster(config);

  const auto step = [](mpc::MachineContext& ctx) {
    ctx.store().set_value<std::uint64_t>("tick", ctx.id());
  };
  cluster.run_round(step, "warmup");  // round 0: all workers survive
  try {
    cluster.run_round(step, "doomed");
    FAIL() << "expected WorkerLost";
  } catch (const ipc::WorkerLost& lost) {
    EXPECT_EQ(lost.rank(), 2u);
    EXPECT_EQ(lost.round(), 1u);
    EXPECT_EQ(lost.cause(), ipc::WorkerLost::Cause::kDied);
  }
  // Clean coordinator shutdown: every forked child was reaped.
  EXPECT_TRUE(no_children_remain());
  // The failed round mutated nothing and recorded nothing.
  EXPECT_EQ(cluster.stats().rounds(), 1u);
}

TEST(WorkerLoss, DeadlineMissSurfacesAsWorkerLost) {
  mpc::ClusterConfig config;
  config.num_machines = 2;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.ipc.round_deadline_ms = 150;
  mpc::Cluster cluster(config);
  try {
    cluster.run_round(
        [](mpc::MachineContext& ctx) {
          if (ctx.id() == 1) {
            std::this_thread::sleep_for(std::chrono::seconds(10));
          }
        },
        "stall");
    FAIL() << "expected WorkerLost";
  } catch (const ipc::WorkerLost& lost) {
    EXPECT_EQ(lost.rank(), 1u);
    EXPECT_EQ(lost.cause(), ipc::WorkerLost::Cause::kDeadline);
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(WorkerLoss, StepExceptionPropagatesLikeInProcess) {
  mpc::ClusterConfig config;
  config.num_machines = 3;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster cluster(config);
  try {
    cluster.run_round(
        [](mpc::MachineContext& ctx) {
          if (ctx.id() >= 1) {
            throw MpteError("boom from rank " + std::to_string(ctx.id()));
          }
        },
        "throwing");
    FAIL() << "expected MpteError";
  } catch (const MpteError& e) {
    // Lowest failing rank wins, matching serial in-process order.
    EXPECT_STREQ(e.what(), "boom from rank 1");
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(Recovery, WorkerLostRestoresFromLatestSnapshot) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mpte_ipc_recovery_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir;
  config.checkpoint.every_k = 1;
  config.ipc.kill_at_round = 2;
  config.ipc.kill_rank = 1;
  mpc::Cluster cluster(config);
  ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
  cluster.set_hooks(&coordinator);

  const auto pipeline = [](mpc::Cluster& c) {
    const std::size_t m = c.num_machines();
    for (std::size_t r = 0; r < 5; ++r) {
      c.run_round(
          [r, m](mpc::MachineContext& ctx) {
            std::uint64_t acc = r;
            for (const auto& msg : ctx.inbox()) acc += msg.payload.size();
            ctx.store().set_value<std::uint64_t>(
                "acc/" + std::to_string(r), acc + ctx.id());
            Serializer s;
            for (std::size_t i = 0; i <= r; ++i) {
              s.write(static_cast<std::uint64_t>(ctx.id() + i));
            }
            ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
          },
          "ring/" + std::to_string(r));
    }
    return Status::Ok();
  };

  const Status done = ckpt::run_with_recovery(cluster, coordinator,
                                              [&] { return pipeline(cluster); });
  ASSERT_TRUE(done.ok()) << done.to_string();
  EXPECT_GE(cluster.stats().resilience().recoveries, 1u);
  EXPECT_GE(cluster.stats().resilience().rounds_replayed, 1u);
  EXPECT_TRUE(no_children_remain());

  // The recovered run must match an uninterrupted in-process reference.
  mpc::ClusterConfig reference_config;
  reference_config.num_machines = 4;
  reference_config.local_memory_bytes = 1 << 20;
  mpc::Cluster reference(reference_config);
  ASSERT_TRUE(pipeline(reference).ok());
  expect_stores_equal(reference, cluster);
  EXPECT_EQ(reference.stats().channel_totals(),
            cluster.stats().channel_totals());

  std::filesystem::remove_all(dir);
}

TEST(Metrics, TransportCountersExportUnderIpcNames) {
  mpc::ClusterConfig config;
  config.num_machines = 3;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster cluster(config);
  run_delta_pipeline(cluster);

  const auto* backend =
      dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
  ASSERT_NE(backend, nullptr);
  const ipc::IpcStats& stats = backend->stats();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.workers_forked, 9u);
  EXPECT_EQ(stats.frames_received, 9u);
  EXPECT_EQ(stats.workers_lost, 0u);
  EXPECT_GT(stats.result_wire_bytes, 0u);
  EXPECT_GT(stats.commit_wire_bytes, 0u);
  EXPECT_GT(stats.store_delta_bytes, 0u);
  EXPECT_GT(stats.fragment_bytes, 0u);

  obs::Registry registry;
  backend->export_metrics(registry);
  EXPECT_EQ(registry.counter_value("mpte_ipc_rounds_total"), stats.rounds);
  EXPECT_EQ(registry.counter_value("mpte_ipc_workers_forked_total"),
            stats.workers_forked);
  EXPECT_EQ(registry.counter_value("mpte_ipc_result_wire_bytes_total"),
            stats.result_wire_bytes);
  const std::string prom = registry.prometheus_text();
  EXPECT_NE(prom.find("mpte_ipc_barrier_seconds"), std::string::npos);
}

}  // namespace
}  // namespace mpte
