// Tests for the multi-process MPC backend (src/ipc/).
//
// The contract under test is byte-identity: Backend::kMultiProcess must
// produce exactly the stores, messages, RoundStats, and golden
// fingerprints of the in-process simulator, because everything after step
// execution runs on the shared coordinator-side code path. Plus the
// failure half: a worker that dies mid-round surfaces as a typed
// WorkerLost with no leaked child process, and a checkpointed run
// recovers from it byte-identically.
#include "ipc/proc_backend.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <thread>

#include "ckpt/manager.hpp"
#include "ckpt/recovery.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "ipc/frames.hpp"
#include "mpc/cluster.hpp"
#include "mpc/step.hpp"
#include "obs/metrics.hpp"
#include "tree/hst_io.hpp"

namespace mpte {
namespace {

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// The execution substrates under test. kInProcess ignores the worker
/// mode and transport; every proc variant must match it byte-for-byte —
/// including across the transport axis (shm ring vs socketpair), which
/// only changes how frame bytes travel, never what they decode to.
struct BackendVariant {
  const char* name;
  mpc::Backend backend;
  mpc::IpcOptions::WorkerMode workers;
  mpc::IpcOptions::Transport transport =
      mpc::IpcOptions::Transport::kShmRing;
};

constexpr BackendVariant kInprocVariant{
    "inproc", mpc::Backend::kInProcess,
    mpc::IpcOptions::WorkerMode::kPersistent};
constexpr BackendVariant kForkVariant{
    "proc-fork", mpc::Backend::kMultiProcess,
    mpc::IpcOptions::WorkerMode::kForkPerRound};
constexpr BackendVariant kPersistentVariant{
    "proc-persistent", mpc::Backend::kMultiProcess,
    mpc::IpcOptions::WorkerMode::kPersistent};
constexpr BackendVariant kForkSocketpairVariant{
    "proc-fork-socketpair", mpc::Backend::kMultiProcess,
    mpc::IpcOptions::WorkerMode::kForkPerRound,
    mpc::IpcOptions::Transport::kSocketpair};
constexpr BackendVariant kPersistentSocketpairVariant{
    "proc-persistent-socketpair", mpc::Backend::kMultiProcess,
    mpc::IpcOptions::WorkerMode::kPersistent,
    mpc::IpcOptions::Transport::kSocketpair};

/// The pinned configuration behind the repo-wide golden fingerprint
/// (test_mpc_channels.cpp GoldenSeed), parameterized by substrate.
mpc::ClusterConfig golden_config(const BackendVariant& variant,
                                 std::size_t threads) {
  mpc::ClusterConfig config;
  config.num_machines = 6;
  config.local_memory_bytes = 1 << 22;
  config.enforce_limits = true;
  config.num_threads = threads;
  config.backend = variant.backend;
  config.ipc.workers = variant.workers;
  config.ipc.transport = variant.transport;
  return config;
}

Result<MpcEmbedding> golden_embed(mpc::Cluster& cluster) {
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  MpcEmbedOptions options;
  options.seed = 99;
  options.num_buckets = 2;
  options.delta = 1024;
  options.use_fjlt = false;
  return mpc_embed(cluster, points, options);
}

std::uint64_t embedding_hash(const MpcEmbedding& result) {
  const auto tree_bytes = hst_to_bytes(result.tree);
  std::uint64_t h =
      fnv1a(tree_bytes.data(), tree_bytes.size(), 1469598103934665603ull);
  const auto& raw = result.embedded_points.raw();
  return fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
               raw.size() * sizeof(double), h);
}

/// True once every child of this process has been reaped — the "no
/// zombies" assertion.
bool no_children_remain() {
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

/// A small 3-round pipeline exercising every delta kind: fresh keys,
/// overwrites, erases, and inbox-dependent writes.
void run_delta_pipeline(mpc::Cluster& cluster) {
  const std::size_t m = cluster.num_machines();
  cluster.run_round(
      [m](mpc::MachineContext& ctx) {
        ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 100});
        Serializer s;
        s.write(static_cast<std::uint64_t>(ctx.id() * 7));
        ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
      },
      "seed");
  cluster.run_round(
      [](mpc::MachineContext& ctx) {
        // Throw (not gtest-assert): under the proc backend this body runs
        // in a forked child, where only exceptions surface.
        if (ctx.inbox().size() != 1) throw MpteError("expected 1 message");
        ctx.store().set_blob("got", ctx.inbox()[0].payload);
        if (ctx.id() % 2 == 0) {
          ctx.store().erase("val");
        } else {
          ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 200});
        }
        ctx.store().set_value<std::uint64_t>("extra", ctx.id() + 40);
      },
      "mix");
  cluster.run_round(
      [](mpc::MachineContext& ctx) { ctx.store().erase("extra"); },
      "cleanup");
}

// Named twins of the delta pipeline plus a parameterized ring step,
// registered once per process: persistent workers resolve these by name
// from their own StepRegistry instead of inheriting a forked closure.
mpc::Step make_test_seed(mpc::StepParams /*params*/) {
  return [](mpc::MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 100});
    Serializer s;
    s.write(static_cast<std::uint64_t>(ctx.id() * 7));
    ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
  };
}

mpc::Step make_test_mix(mpc::StepParams /*params*/) {
  return [](mpc::MachineContext& ctx) {
    if (ctx.inbox().size() != 1) throw MpteError("expected 1 message");
    ctx.store().set_blob("got", ctx.inbox()[0].payload);
    if (ctx.id() % 2 == 0) {
      ctx.store().erase("val");
    } else {
      ctx.store().set_vector<std::uint32_t>("val", {ctx.id(), 200});
    }
    ctx.store().set_value<std::uint64_t>("extra", ctx.id() + 40);
  };
}

mpc::Step make_test_cleanup(mpc::StepParams /*params*/) {
  return [](mpc::MachineContext& ctx) { ctx.store().erase("extra"); };
}

mpc::Step make_test_ring(mpc::StepParams params) {
  Deserializer d(params);
  const auto r = d.read<std::uint64_t>();
  return [r](mpc::MachineContext& ctx) {
    const std::size_t m = ctx.num_machines();
    std::uint64_t acc = r;
    for (const auto& msg : ctx.inbox()) acc += msg.payload.size();
    ctx.store().set_value<std::uint64_t>("acc/" + std::to_string(r),
                                         acc + ctx.id());
    Serializer s;
    for (std::uint64_t i = 0; i <= r; ++i) {
      s.write(static_cast<std::uint64_t>(ctx.id() + i));
    }
    ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
  };
}

const mpc::RegisterStep kRegTestSeed{"test/seed", make_test_seed};
const mpc::RegisterStep kRegTestMix{"test/mix", make_test_mix};
const mpc::RegisterStep kRegTestCleanup{"test/cleanup", make_test_cleanup};
const mpc::RegisterStep kRegTestRing{"test/ring", make_test_ring};

/// The delta pipeline as registered named steps — runnable without fork
/// fallback on the persistent substrate.
void run_named_delta_pipeline(mpc::Cluster& cluster) {
  cluster.run_round(mpc::StepSpec("test/seed"), "seed");
  cluster.run_round(mpc::StepSpec("test/mix"), "mix");
  cluster.run_round(mpc::StepSpec("test/cleanup"), "cleanup");
}

mpc::StepSpec ring_spec(std::uint64_t r) {
  Serializer s;
  s.write(r);
  return mpc::StepSpec("test/ring", std::move(s));
}

void run_ring_pipeline(mpc::Cluster& cluster, std::size_t rounds) {
  for (std::uint64_t r = 0; r < rounds; ++r) {
    cluster.run_round(ring_spec(r), "ring/" + std::to_string(r));
  }
}

void expect_records_equal(const mpc::RoundStats& a, const mpc::RoundStats& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t r = 0; r < a.records().size(); ++r) {
    const auto& ra = a.records()[r];
    const auto& rb = b.records()[r];
    EXPECT_EQ(ra.label, rb.label) << "round " << r;
    EXPECT_EQ(ra.max_sent_bytes, rb.max_sent_bytes) << "round " << r;
    EXPECT_EQ(ra.max_recv_bytes, rb.max_recv_bytes) << "round " << r;
    EXPECT_EQ(ra.total_message_bytes, rb.total_message_bytes)
        << "round " << r;
    EXPECT_EQ(ra.max_resident_bytes, rb.max_resident_bytes) << "round " << r;
    EXPECT_EQ(ra.total_resident_bytes, rb.total_resident_bytes)
        << "round " << r;
    EXPECT_EQ(ra.violations, rb.violations) << "round " << r;
    EXPECT_EQ(ra.channel_bytes, rb.channel_bytes) << "round " << r;
  }
}

void expect_stores_equal(const mpc::Cluster& a, const mpc::Cluster& b) {
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (mpc::MachineId id = 0; id < a.num_machines(); ++id) {
    const auto ea = a.store(id).entries();
    const auto eb = b.store(id).entries();
    ASSERT_EQ(ea.size(), eb.size()) << "machine " << id;
    for (std::size_t k = 0; k < ea.size(); ++k) {
      EXPECT_EQ(ea[k].first, eb[k].first) << "machine " << id;
      EXPECT_TRUE(ea[k].second == eb[k].second)
          << "machine " << id << " key " << ea[k].first;
    }
  }
}

TEST(BackendEquivalence, GoldenFingerprintAcrossBackendsAndThreads) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  for (const BackendVariant& variant :
       {kInprocVariant, kForkVariant, kPersistentVariant}) {
    for (const std::size_t threads : {1u, 8u}) {
      mpc::Cluster cluster(golden_config(variant, threads));
      const auto result = golden_embed(cluster);
      ASSERT_TRUE(result.ok()) << result.status().to_string();
      EXPECT_EQ(embedding_hash(*result), kExpectedHash)
          << "backend=" << variant.name << " threads=" << threads;
    }
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendEquivalence, RoundStatsAndChannelBytesIdentical) {
  mpc::Cluster inproc(golden_config(kInprocVariant, 1));
  mpc::Cluster fork_mode(golden_config(kForkVariant, 8));
  mpc::Cluster persistent(golden_config(kPersistentVariant, 8));
  ASSERT_TRUE(golden_embed(inproc).ok());
  ASSERT_TRUE(golden_embed(fork_mode).ok());
  ASSERT_TRUE(golden_embed(persistent).ok());
  expect_records_equal(inproc.stats(), fork_mode.stats());
  expect_records_equal(inproc.stats(), persistent.stats());
  EXPECT_EQ(inproc.stats().channel_totals(),
            fork_mode.stats().channel_totals());
  EXPECT_EQ(inproc.stats().channel_totals(),
            persistent.stats().channel_totals());
  expect_stores_equal(inproc, fork_mode);
  expect_stores_equal(inproc, persistent);

  // The whole embedding pipeline runs as registered named steps: the
  // persistent pool never fell back to fork-per-round.
  const auto* backend =
      dynamic_cast<const ipc::ProcBackend*>(persistent.round_executor());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->stats().fallback_rounds, 0u);
  EXPECT_EQ(backend->stats().workers_forked, persistent.num_machines());
  EXPECT_GT(backend->stats().step_frames_sent, 0u);
}

TEST(BackendEquivalence, SocketpairAndShmTransportsIdentical) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  for (const std::size_t threads : {1u, 8u}) {
    mpc::Cluster shm(golden_config(kPersistentVariant, threads));
    mpc::Cluster socketpair(
        golden_config(kPersistentSocketpairVariant, threads));
    const auto shm_result = golden_embed(shm);
    const auto sp_result = golden_embed(socketpair);
    ASSERT_TRUE(shm_result.ok()) << shm_result.status().to_string();
    ASSERT_TRUE(sp_result.ok()) << sp_result.status().to_string();
    EXPECT_EQ(embedding_hash(*shm_result), kExpectedHash)
        << "threads=" << threads;
    EXPECT_EQ(embedding_hash(*sp_result), kExpectedHash)
        << "threads=" << threads;
    expect_records_equal(shm.stats(), socketpair.stats());
    EXPECT_EQ(shm.stats().channel_totals(),
              socketpair.stats().channel_totals());
    expect_stores_equal(shm, socketpair);

    // The transport actually differed: the shm run moved frame bytes
    // through shared memory, the socketpair run kept all ring counters
    // at zero.
    const auto* shm_backend =
        dynamic_cast<const ipc::ProcBackend*>(shm.round_executor());
    const auto* sp_backend =
        dynamic_cast<const ipc::ProcBackend*>(socketpair.round_executor());
    ASSERT_NE(shm_backend, nullptr);
    ASSERT_NE(sp_backend, nullptr);
    EXPECT_GT(shm_backend->stats().shm_bytes, 0u);
    EXPECT_EQ(sp_backend->stats().shm_bytes, 0u);
    EXPECT_EQ(sp_backend->stats().ring_wraps, 0u);
    EXPECT_EQ(sp_backend->stats().ring_full_waits, 0u);
    EXPECT_EQ(sp_backend->stats().fallback_frames, 0u);
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendEquivalence, TinyRingFallsBackWithoutChangingResults) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  // A ring far smaller than the big resync/result frames forces the
  // socketpair fallback path (frame > capacity - marker), which must be
  // counted — never silently truncated — and must not change a byte of
  // the result.
  mpc::ClusterConfig config = golden_config(kPersistentVariant, 8);
  config.ipc.shm_ring_bytes = 1u << 10;
  config.ipc.shm_arena_bytes = 1u << 12;
  {
    mpc::Cluster cluster(config);
    const auto result = golden_embed(cluster);
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_EQ(embedding_hash(*result), kExpectedHash);
    const auto* backend =
        dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
    ASSERT_NE(backend, nullptr);
    EXPECT_GT(backend->stats().fallback_frames, 0u);
  }  // ~Cluster joins the persistent pool before the zombie check
  EXPECT_TRUE(no_children_remain());
}

TEST(BackendEquivalence, StoreDeltasCoverEraseOverwriteAndFreshKeys) {
  mpc::ClusterConfig config;
  config.num_machines = 5;
  config.local_memory_bytes = 1 << 20;
  mpc::Cluster inproc(config);
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster proc(config);
  run_delta_pipeline(inproc);
  run_delta_pipeline(proc);
  expect_stores_equal(inproc, proc);
  expect_records_equal(inproc.stats(), proc.stats());
  // Spot-check the deltas actually shrank the wire: round 3 ("cleanup")
  // erased one key, so its result frames must not re-ship "got"/"val".
  const auto* backend =
      dynamic_cast<const ipc::ProcBackend*>(proc.round_executor());
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->stats().rounds, 3u);
  EXPECT_TRUE(no_children_remain());
}

TEST(PersistentWorkers, NamedPipelineRunsWithoutForkFallback) {
  mpc::ClusterConfig config;
  config.num_machines = 5;
  config.local_memory_bytes = 1 << 20;
  mpc::Cluster inproc(config);
  config.backend = mpc::Backend::kMultiProcess;
  {
    mpc::Cluster proc(config);
    run_named_delta_pipeline(inproc);
    run_named_delta_pipeline(proc);
    expect_stores_equal(inproc, proc);
    expect_records_equal(inproc.stats(), proc.stats());

    const auto* backend =
        dynamic_cast<const ipc::ProcBackend*>(proc.round_executor());
    ASSERT_NE(backend, nullptr);
    const ipc::IpcStats& stats = backend->stats();
    EXPECT_EQ(stats.rounds, 3u);
    EXPECT_EQ(stats.fallback_rounds, 0u);
    // One pool spawn, not one fork per rank per round.
    EXPECT_EQ(stats.workers_forked, 5u);
    EXPECT_EQ(stats.workers_respawned, 0u);
    EXPECT_EQ(stats.step_frames_sent, 15u);
    EXPECT_GT(stats.step_wire_bytes, 0u);
    // Full resync once per worker at spawn, then dirty-key deltas only.
    EXPECT_EQ(stats.store_resyncs, 5u);
    ASSERT_EQ(stats.step_rounds.size(), 3u);
    EXPECT_EQ(stats.step_rounds.at("test/seed"), 1u);
    EXPECT_EQ(stats.step_rounds.at("test/mix"), 1u);
    EXPECT_EQ(stats.step_rounds.at("test/cleanup"), 1u);
  }
  // ~Cluster shut the pool down (kShutdown + reap): no zombies.
  EXPECT_TRUE(no_children_remain());
}

TEST(PersistentWorkers, KillMidRunRespawnsPoolAndResyncsStores) {
  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.ipc.kill_at_round = 1;
  config.ipc.kill_rank = 2;
  {
    mpc::Cluster cluster(config);
    cluster.run_round(ring_spec(0), "ring/0");
    try {
      cluster.run_round(ring_spec(1), "ring/1");
      FAIL() << "expected WorkerLost";
    } catch (const ipc::WorkerLost& lost) {
      EXPECT_EQ(lost.rank(), 2u);
      EXPECT_EQ(lost.round(), 1u);
      EXPECT_EQ(lost.cause(), ipc::WorkerLost::Cause::kDied);
    }
    // The failed round mutated nothing: retry it and run to completion.
    // The backend respawns the whole pool and re-seeds every worker's
    // store from the coordinator's authoritative copy.
    EXPECT_EQ(cluster.stats().rounds(), 1u);
    for (std::uint64_t r = 1; r < 5; ++r) {
      cluster.run_round(ring_spec(r), "ring/" + std::to_string(r));
    }

    const auto* backend =
        dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
    ASSERT_NE(backend, nullptr);
    const ipc::IpcStats& stats = backend->stats();
    EXPECT_EQ(stats.workers_lost, 1u);
    EXPECT_EQ(stats.workers_respawned, 4u);
    // Initial spawn + post-kill respawn: two full resyncs per rank.
    EXPECT_EQ(stats.store_resyncs, 8u);
    EXPECT_EQ(stats.fallback_rounds, 0u);

    // Byte-identity with an uninterrupted in-process run.
    mpc::ClusterConfig reference_config;
    reference_config.num_machines = 4;
    reference_config.local_memory_bytes = 1 << 20;
    mpc::Cluster reference(reference_config);
    run_ring_pipeline(reference, 5);
    expect_stores_equal(reference, cluster);
    expect_records_equal(reference.stats(), cluster.stats());
    EXPECT_EQ(reference.stats().channel_totals(),
              cluster.stats().channel_totals());
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(PersistentWorkers, CheckpointRecoveryIsByteIdentical) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mpte_ipc_persistent_recovery_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir;
  config.checkpoint.every_k = 1;
  config.ipc.kill_at_round = 2;
  config.ipc.kill_rank = 1;
  {
    mpc::Cluster cluster(config);
    ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
    cluster.set_hooks(&coordinator);

    const Status done = ckpt::run_with_recovery(cluster, coordinator, [&] {
      run_ring_pipeline(cluster, 5);
      return Status::Ok();
    });
    ASSERT_TRUE(done.ok()) << done.to_string();
    EXPECT_GE(cluster.stats().resilience().recoveries, 1u);

    const auto* backend =
        dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->stats().workers_lost, 1u);
    EXPECT_GE(backend->stats().workers_respawned, 4u);
    EXPECT_GE(backend->stats().store_resyncs, 8u);

    mpc::ClusterConfig reference_config;
    reference_config.num_machines = 4;
    reference_config.local_memory_bytes = 1 << 20;
    mpc::Cluster reference(reference_config);
    run_ring_pipeline(reference, 5);
    expect_stores_equal(reference, cluster);
    EXPECT_EQ(reference.stats().channel_totals(),
              cluster.stats().channel_totals());
  }
  EXPECT_TRUE(no_children_remain());
  std::filesystem::remove_all(dir);
}

TEST(PersistentWorkers, GoldenEmbedRecoversFromKilledWorker) {
  constexpr std::uint64_t kExpectedHash = 8852295253212578257ull;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mpte_ipc_persistent_golden_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  mpc::ClusterConfig config = golden_config(kPersistentVariant, 8);
  config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir;
  config.checkpoint.every_k = 2;
  config.ipc.kill_at_round = 5;
  config.ipc.kill_rank = 3;
  {
    mpc::Cluster cluster(config);
    ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
    cluster.set_hooks(&coordinator);

    std::optional<MpcEmbedding> result;
    const Status done = ckpt::run_with_recovery(cluster, coordinator, [&] {
      auto embedded = golden_embed(cluster);
      if (!embedded.ok()) return embedded.status();
      result = std::move(*embedded);
      return Status::Ok();
    });
    ASSERT_TRUE(done.ok()) << done.to_string();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(embedding_hash(*result), kExpectedHash);
    EXPECT_GE(cluster.stats().resilience().recoveries, 1u);
  }
  EXPECT_TRUE(no_children_remain());
  std::filesystem::remove_all(dir);
}

TEST(Frames, StepAndShutdownRoundTrip) {
  ipc::StepFrame frame;
  frame.rank = 2;
  frame.round = 41;
  frame.step_name = "test/ring";
  frame.step_params = mpc::Buffer({7, 0, 0, 0, 0, 0, 0, 0});
  frame.reset_store = true;
  frame.inject_kill = false;
  frame.store_patch.push_back({"alpha", true, mpc::Buffer({1, 2, 3})});
  frame.store_patch.push_back({"beta", false, mpc::Buffer()});
  mpc::Message message;
  message.from = 1;
  message.payload = mpc::Buffer({9, 8, 7});
  frame.inbox.push_back(message);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const mpc::Buffer encoded = ipc::encode_step(frame);
  ASSERT_TRUE(ipc::write_frame(sv[0], encoded).ok());
  auto decoded = ipc::read_frame(sv[1], 1000);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->kind, ipc::FrameKind::kStep);
  EXPECT_EQ(decoded->step.rank, 2u);
  EXPECT_EQ(decoded->step.round, 41u);
  EXPECT_EQ(decoded->step.step_name, "test/ring");
  EXPECT_TRUE(decoded->step.step_params == frame.step_params);
  EXPECT_TRUE(decoded->step.reset_store);
  EXPECT_FALSE(decoded->step.inject_kill);
  ASSERT_EQ(decoded->step.store_patch.size(), 2u);
  EXPECT_EQ(decoded->step.store_patch[0].key, "alpha");
  EXPECT_TRUE(decoded->step.store_patch[0].present);
  EXPECT_TRUE(decoded->step.store_patch[0].blob == frame.store_patch[0].blob);
  EXPECT_FALSE(decoded->step.store_patch[1].present);
  ASSERT_EQ(decoded->step.inbox.size(), 1u);
  EXPECT_EQ(decoded->step.inbox[0].from, 1u);
  EXPECT_TRUE(decoded->step.inbox[0].payload == message.payload);

  ASSERT_TRUE(ipc::write_frame(sv[0], ipc::encode_shutdown()).ok());
  const auto shutdown = ipc::read_frame(sv[1], 1000);
  ASSERT_TRUE(shutdown.ok()) << shutdown.status().to_string();
  EXPECT_EQ(shutdown->kind, ipc::FrameKind::kShutdown);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(Frames, ResultRoundTripAndCorruptionDetection) {
  ipc::ResultFrame frame;
  frame.rank = 3;
  frame.round = 17;
  frame.store_delta.push_back(
      {"alpha", true, mpc::Buffer({1, 2, 3, 4, 5})});
  frame.store_delta.push_back({"beta", false, mpc::Buffer()});
  frame.fragments.resize(2);
  frame.fragments[1].push_back(mpc::Buffer({9, 9}));
  frame.channel_bytes["test/chan"] = 2;

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const mpc::Buffer encoded = ipc::encode_result(frame);
  ASSERT_TRUE(ipc::write_frame(sv[0], encoded).ok());
  auto decoded = ipc::read_frame(sv[1], 1000);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->kind, ipc::FrameKind::kResult);
  EXPECT_EQ(decoded->wire_bytes, encoded.size());
  EXPECT_EQ(decoded->result.rank, 3u);
  EXPECT_EQ(decoded->result.round, 17u);
  ASSERT_EQ(decoded->result.store_delta.size(), 2u);
  EXPECT_EQ(decoded->result.store_delta[0].key, "alpha");
  EXPECT_TRUE(decoded->result.store_delta[0].present);
  EXPECT_TRUE(decoded->result.store_delta[0].blob == frame.store_delta[0].blob);
  EXPECT_FALSE(decoded->result.store_delta[1].present);
  ASSERT_EQ(decoded->result.fragments.size(), 2u);
  EXPECT_TRUE(decoded->result.fragments[1][0] == frame.fragments[1][0]);
  EXPECT_EQ(decoded->result.channel_bytes, frame.channel_bytes);

  // Flip one payload byte: the envelope digest must reject the frame.
  std::vector<std::uint8_t> corrupt(encoded.data(),
                                    encoded.data() + encoded.size());
  corrupt[corrupt.size() / 2] ^= 0x40;
  ASSERT_TRUE(mpc::Buffer(corrupt).write_fd(sv[0]).ok());
  const auto rejected = ipc::read_frame(sv[1], 1000);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WorkerLoss, KillMidRoundThrowsTypedErrorAndLeavesNoZombies) {
  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.ipc.kill_at_round = 1;
  config.ipc.kill_rank = 2;
  mpc::Cluster cluster(config);

  const auto step = [](mpc::MachineContext& ctx) {
    ctx.store().set_value<std::uint64_t>("tick", ctx.id());
  };
  cluster.run_round(step, "warmup");  // round 0: all workers survive
  try {
    cluster.run_round(step, "doomed");
    FAIL() << "expected WorkerLost";
  } catch (const ipc::WorkerLost& lost) {
    EXPECT_EQ(lost.rank(), 2u);
    EXPECT_EQ(lost.round(), 1u);
    EXPECT_EQ(lost.cause(), ipc::WorkerLost::Cause::kDied);
  }
  // Clean coordinator shutdown: every forked child was reaped.
  EXPECT_TRUE(no_children_remain());
  // The failed round mutated nothing and recorded nothing.
  EXPECT_EQ(cluster.stats().rounds(), 1u);
}

TEST(WorkerLoss, DeadlineMissSurfacesAsWorkerLost) {
  mpc::ClusterConfig config;
  config.num_machines = 2;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.ipc.round_deadline_ms = 150;
  mpc::Cluster cluster(config);
  try {
    cluster.run_round(
        [](mpc::MachineContext& ctx) {
          if (ctx.id() == 1) {
            std::this_thread::sleep_for(std::chrono::seconds(10));
          }
        },
        "stall");
    FAIL() << "expected WorkerLost";
  } catch (const ipc::WorkerLost& lost) {
    EXPECT_EQ(lost.rank(), 1u);
    EXPECT_EQ(lost.cause(), ipc::WorkerLost::Cause::kDeadline);
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(WorkerLoss, StepExceptionPropagatesLikeInProcess) {
  mpc::ClusterConfig config;
  config.num_machines = 3;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster cluster(config);
  try {
    cluster.run_round(
        [](mpc::MachineContext& ctx) {
          if (ctx.id() >= 1) {
            throw MpteError("boom from rank " + std::to_string(ctx.id()));
          }
        },
        "throwing");
    FAIL() << "expected MpteError";
  } catch (const MpteError& e) {
    // Lowest failing rank wins, matching serial in-process order.
    EXPECT_STREQ(e.what(), "boom from rank 1");
  }
  EXPECT_TRUE(no_children_remain());
}

TEST(Recovery, WorkerLostRestoresFromLatestSnapshot) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mpte_ipc_recovery_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  mpc::ClusterConfig config;
  config.num_machines = 4;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  config.checkpoint.mode = mpc::CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir;
  config.checkpoint.every_k = 1;
  config.ipc.kill_at_round = 2;
  config.ipc.kill_rank = 1;
  mpc::Cluster cluster(config);
  ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
  cluster.set_hooks(&coordinator);

  const auto pipeline = [](mpc::Cluster& c) {
    const std::size_t m = c.num_machines();
    for (std::size_t r = 0; r < 5; ++r) {
      c.run_round(
          [r, m](mpc::MachineContext& ctx) {
            std::uint64_t acc = r;
            for (const auto& msg : ctx.inbox()) acc += msg.payload.size();
            ctx.store().set_value<std::uint64_t>(
                "acc/" + std::to_string(r), acc + ctx.id());
            Serializer s;
            for (std::size_t i = 0; i <= r; ++i) {
              s.write(static_cast<std::uint64_t>(ctx.id() + i));
            }
            ctx.send((ctx.id() + 1) % m, std::move(s), "test/ring");
          },
          "ring/" + std::to_string(r));
    }
    return Status::Ok();
  };

  const Status done = ckpt::run_with_recovery(cluster, coordinator,
                                              [&] { return pipeline(cluster); });
  ASSERT_TRUE(done.ok()) << done.to_string();
  EXPECT_GE(cluster.stats().resilience().recoveries, 1u);
  EXPECT_GE(cluster.stats().resilience().rounds_replayed, 1u);
  EXPECT_TRUE(no_children_remain());

  // The recovered run must match an uninterrupted in-process reference.
  mpc::ClusterConfig reference_config;
  reference_config.num_machines = 4;
  reference_config.local_memory_bytes = 1 << 20;
  mpc::Cluster reference(reference_config);
  ASSERT_TRUE(pipeline(reference).ok());
  expect_stores_equal(reference, cluster);
  EXPECT_EQ(reference.stats().channel_totals(),
            cluster.stats().channel_totals());

  std::filesystem::remove_all(dir);
}

TEST(Metrics, TransportCountersExportUnderIpcNames) {
  mpc::ClusterConfig config;
  config.num_machines = 3;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  mpc::Cluster cluster(config);
  run_delta_pipeline(cluster);

  const auto* backend =
      dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
  ASSERT_NE(backend, nullptr);
  const ipc::IpcStats& stats = backend->stats();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.workers_forked, 9u);
  EXPECT_EQ(stats.frames_received, 9u);
  EXPECT_EQ(stats.workers_lost, 0u);
  EXPECT_GT(stats.result_wire_bytes, 0u);
  EXPECT_GT(stats.commit_wire_bytes, 0u);
  EXPECT_GT(stats.store_delta_bytes, 0u);
  EXPECT_GT(stats.fragment_bytes, 0u);
  // Hosted closures cannot ship to a persistent worker: every round fell
  // back to fork-per-round, and the pool was never spawned.
  EXPECT_EQ(stats.fallback_rounds, 3u);
  EXPECT_EQ(stats.step_frames_sent, 0u);
  EXPECT_EQ(stats.workers_respawned, 0u);
  EXPECT_EQ(stats.store_resyncs, 0u);

  obs::Registry registry;
  backend->export_metrics(registry);
  EXPECT_EQ(registry.counter_value("mpte_ipc_rounds_total"), stats.rounds);
  EXPECT_EQ(registry.counter_value("mpte_ipc_workers_forked_total"),
            stats.workers_forked);
  EXPECT_EQ(registry.counter_value("mpte_ipc_result_wire_bytes_total"),
            stats.result_wire_bytes);
  EXPECT_EQ(registry.counter_value("mpte_ipc_fallback_rounds_total"),
            stats.fallback_rounds);
  const std::string prom = registry.prometheus_text();
  EXPECT_NE(prom.find("mpte_ipc_barrier_seconds"), std::string::npos);
}

TEST(Metrics, StepRoundsExportWithStepNameLabels) {
  mpc::ClusterConfig config;
  config.num_machines = 3;
  config.local_memory_bytes = 1 << 20;
  config.backend = mpc::Backend::kMultiProcess;
  {
    mpc::Cluster cluster(config);
    run_named_delta_pipeline(cluster);
    const auto* backend =
        dynamic_cast<const ipc::ProcBackend*>(cluster.round_executor());
    ASSERT_NE(backend, nullptr);
    obs::Registry registry;
    backend->export_metrics(registry);
    const std::string prom = registry.prometheus_text();
    EXPECT_NE(prom.find("mpte_ipc_step_frames_sent_total"),
              std::string::npos);
    EXPECT_NE(prom.find("mpte_ipc_workers_respawned_total"),
              std::string::npos);
    EXPECT_NE(prom.find("mpte_ipc_store_resyncs_total"), std::string::npos);
    EXPECT_NE(
        prom.find("mpte_ipc_step_rounds_total{step=\"test/seed\"} 1"),
        std::string::npos)
        << prom;
  }
  EXPECT_TRUE(no_children_remain());
}

}  // namespace
}  // namespace mpte
