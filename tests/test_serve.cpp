// mpte::serve — batcher correctness vs direct queries, cache semantics,
// admission control (backpressure + deadlines), the wire protocol, the
// socket server, and a multi-threaded hammer suitable for the TSan job.
#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ensemble.hpp"
#include "geometry/generators.hpp"
#include "serve/lru_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace mpte::serve {
namespace {

EmbeddingEnsemble test_ensemble(std::size_t n = 60, std::size_t trees = 3,
                                std::uint64_t seed = 5) {
  const PointSet points = generate_uniform_cube(n, 3, 20.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = EmbeddingEnsemble::build(points, options, trees);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

// ---------------------------------------------------------------- cache

TEST(LruCache, HitMissAndRecency) {
  ShardedLruCache cache(ShardedLruCache::kEntryBytes * 64, 1);
  double value = 0.0;
  EXPECT_FALSE(cache.lookup({1, 2, 3}, &value));
  cache.insert({1, 2, 3}, 7.5);
  EXPECT_TRUE(cache.lookup({1, 2, 3}, &value));
  EXPECT_EQ(value, 7.5);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsedWithinByteBudget) {
  // Budget of exactly 3 entries, single shard so order is total.
  ShardedLruCache cache(ShardedLruCache::kEntryBytes * 3, 1);
  cache.insert({0, 0, 1}, 1.0);
  cache.insert({0, 0, 2}, 2.0);
  cache.insert({0, 0, 3}, 3.0);
  double value = 0.0;
  EXPECT_TRUE(cache.lookup({0, 0, 1}, &value));  // refresh key 1
  cache.insert({0, 0, 4}, 4.0);                  // evicts key 2 (LRU)
  EXPECT_FALSE(cache.lookup({0, 0, 2}, &value));
  EXPECT_TRUE(cache.lookup({0, 0, 1}, &value));
  EXPECT_TRUE(cache.lookup({0, 0, 3}, &value));
  EXPECT_TRUE(cache.lookup({0, 0, 4}, &value));
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_LE(cache.counters().bytes, ShardedLruCache::kEntryBytes * 3);
}

TEST(LruCache, ZeroBytesDisables) {
  ShardedLruCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.insert({1, 1, 1}, 1.0);
  double value = 0.0;
  EXPECT_FALSE(cache.lookup({1, 1, 1}, &value));
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST(LruCache, InsertRefreshesExistingKey) {
  ShardedLruCache cache(ShardedLruCache::kEntryBytes * 8, 2);
  cache.insert({9, 1, 2}, 1.0);
  cache.insert({9, 1, 2}, 2.0);
  double value = 0.0;
  EXPECT_TRUE(cache.lookup({9, 1, 2}, &value));
  EXPECT_EQ(value, 2.0);
  EXPECT_EQ(cache.counters().entries, 1u);
}

// ----------------------------------------------------------------- wire

TEST(Wire, ParsesDistanceWithDefaults) {
  const auto request = parse_request("dist 3 9");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->kind, RequestKind::kDistance);
  EXPECT_EQ(request->combiner, Combiner::kMin);
  EXPECT_EQ(request->p, 3u);
  EXPECT_EQ(request->q, 9u);
  EXPECT_EQ(request->deadline.count(), 0);
}

TEST(Wire, ParsesCombinerAndDeadline) {
  const auto request = parse_request("knn 5 8 exp 250");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->kind, RequestKind::kKnn);
  EXPECT_EQ(request->combiner, Combiner::kExpected);
  EXPECT_EQ(request->k, 8u);
  EXPECT_EQ(request->deadline, std::chrono::milliseconds(250));
  const auto range = parse_request("range 2 12.5 min");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->kind, RequestKind::kRangeCount);
  EXPECT_EQ(range->radius, 12.5);
}

TEST(Wire, RejectsMalformedLines) {
  for (const char* line :
       {"", "dist", "dist 1", "dist 1 x", "knn 1 2 bogus", "range 1 nan2",
        "frob 1 2", "dist 1 2 min 10 extra"}) {
    EXPECT_FALSE(parse_request(line).ok()) << "line: '" << line << "'";
    const auto status = parse_request(line).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

TEST(Wire, ControlLines) {
  EXPECT_EQ(parse_control("stats"), ControlCommand::kStats);
  EXPECT_EQ(parse_control("info"), ControlCommand::kInfo);
  EXPECT_EQ(parse_control("quit"), ControlCommand::kQuit);
  EXPECT_EQ(parse_control("shutdown"), ControlCommand::kShutdown);
  EXPECT_EQ(parse_control("dist 1 2"), ControlCommand::kNone);
  EXPECT_EQ(parse_control("statsx"), ControlCommand::kNone);
}

TEST(Wire, FormatsResponsesAndErrors) {
  Response distance;
  distance.kind = RequestKind::kDistance;
  distance.value = 1.5;
  EXPECT_EQ(format_response(distance), "ok dist 1.5");
  Response knn;
  knn.kind = RequestKind::kKnn;
  knn.neighbors = {{4, 2.0}, {7, 3.0}};
  knn.value = 2.0;
  EXPECT_EQ(format_response(knn), "ok knn 2 4:2 7:3");
  Response range;
  range.kind = RequestKind::kRangeCount;
  range.value = 12.0;
  EXPECT_EQ(format_response(range), "ok range 12");
  const std::string err = format_response(
      Status(StatusCode::kDeadlineExceeded, "too late"));
  EXPECT_EQ(err, "err deadline-exceeded too late");
  EXPECT_TRUE(is_ok_line("ok dist 1.5"));
  EXPECT_FALSE(is_ok_line(err));
}

// -------------------------------------------------------------- service

TEST(Service, BatchedAnswersMatchDirectQueries) {
  EmbeddingService service(test_ensemble());
  const EmbeddingEnsemble& ensemble = service.ensemble();
  const std::size_t n = ensemble.num_points();
  std::vector<Request> requests;
  for (std::size_t p = 0; p < n; p += 3) {
    for (std::size_t q = p + 1; q < n; q += 7) {
      requests.push_back(Request::Distance(p, q, Combiner::kMin));
      requests.push_back(Request::Distance(p, q, Combiner::kExpected));
    }
  }
  auto futures = service.submit_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok());
    const Request& request = requests[i];
    const double direct =
        request.combiner == Combiner::kMin
            ? ensemble.min_distance(request.p, request.q)
            : ensemble.expected_distance(request.p, request.q);
    EXPECT_EQ(result->value, direct) << "request " << i;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.submitted, requests.size());
}

TEST(Service, EnsembleQueriesMatchNaiveWalkOracle) {
  // The LcaIndex-backed ensemble path must agree with the O(depth)
  // Hst::distance walk (the oracle) to float tolerance.
  const EmbeddingEnsemble ensemble = test_ensemble(50, 4, 11);
  const std::size_t n = ensemble.num_points();
  for (std::size_t p = 0; p < n; p += 2) {
    for (std::size_t q = p; q < n; q += 5) {
      double walk_min = std::numeric_limits<double>::infinity();
      double walk_sum = 0.0;
      for (std::size_t t = 0; t < ensemble.size(); ++t) {
        const double walk = ensemble.member(t).distance(p, q);
        walk_min = std::min(walk_min, walk);
        walk_sum += walk;
      }
      const double walk_mean = walk_sum / static_cast<double>(ensemble.size());
      EXPECT_NEAR(ensemble.min_distance(p, q), walk_min,
                  1e-9 * (1.0 + walk_min));
      EXPECT_NEAR(ensemble.expected_distance(p, q), walk_mean,
                  1e-9 * (1.0 + walk_mean));
    }
  }
}

TEST(Service, KnnReturnsSortedNeighborsWithExactDistances) {
  EmbeddingService service(test_ensemble());
  const EmbeddingEnsemble& ensemble = service.ensemble();
  const std::size_t n = ensemble.num_points();
  for (const std::size_t p : {std::size_t{0}, n / 2, n - 1}) {
    auto result = service.submit(Request::Knn(p, 5)).get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->neighbors.size(), 5u);
    double last = -1.0;
    for (const Neighbor& neighbor : result->neighbors) {
      EXPECT_NE(neighbor.point, p);
      EXPECT_GE(neighbor.distance, last);
      last = neighbor.distance;
      EXPECT_EQ(neighbor.distance, ensemble.min_distance(p, neighbor.point));
    }
  }
  // k larger than n-1 clamps.
  auto all = service.submit(Request::Knn(0, n + 10)).get();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->neighbors.size(), n - 1);
}

TEST(Service, RangeCountMatchesBruteForce) {
  EmbeddingService service(test_ensemble());
  const EmbeddingEnsemble& ensemble = service.ensemble();
  const std::size_t n = ensemble.num_points();
  for (const double radius : {0.0, 5.0, 15.0, 1e9}) {
    auto result = service.submit(Request::RangeCount(7, radius)).get();
    ASSERT_TRUE(result.ok());
    std::size_t expected = 0;
    for (std::size_t q = 0; q < n; ++q) {
      if (q != 7 && ensemble.min_distance(7, q) <= radius) ++expected;
    }
    EXPECT_EQ(result->value, static_cast<double>(expected))
        << "radius " << radius;
  }
}

TEST(Service, CachedAnswersEqualUncached) {
  EmbeddingService service(test_ensemble());
  const auto first = service.submit(Request::Distance(1, 2)).get();
  const auto second = service.submit(Request::Distance(1, 2)).get();
  const auto swapped = service.submit(Request::Distance(2, 1)).get();
  ASSERT_TRUE(first.ok() && second.ok() && swapped.ok());
  EXPECT_EQ(first->value, second->value);
  EXPECT_EQ(first->value, swapped->value);  // canonicalized pair key
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.cache_hits, 2u);
  EXPECT_GE(stats.cache_misses, 1u);
  EXPECT_GT(stats.cache_hit_rate, 0.0);
}

TEST(Service, CacheDisabledStillAnswersIdentically) {
  ServiceOptions cached_options;
  ServiceOptions uncached_options;
  uncached_options.cache_bytes = 0;
  EmbeddingService cached(test_ensemble(40, 2, 3), cached_options);
  EmbeddingService uncached(test_ensemble(40, 2, 3), uncached_options);
  for (std::size_t q = 1; q < 40; q += 3) {
    const auto a = cached.submit(Request::Distance(0, q)).get();
    const auto b = uncached.submit(Request::Distance(0, q)).get();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->value, b->value);
  }
  EXPECT_EQ(uncached.stats().cache_hits + uncached.stats().cache_misses, 0u);
}

TEST(Service, InvalidRequestsGetTypedStatuses) {
  EmbeddingService service(test_ensemble(30, 1, 9));
  const auto out_of_range = service.submit(Request::Distance(0, 900)).get();
  EXPECT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  const auto zero_k = service.submit(Request::Knn(0, 0)).get();
  EXPECT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);
  const auto negative = service.submit(Request::RangeCount(0, -1.0)).get();
  EXPECT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().failed, 3u);
}

TEST(Service, BackpressureRejectsBeyondQueueBound) {
  ServiceOptions options;
  options.max_queue = 2;
  options.start_paused = true;
  EmbeddingService service(test_ensemble(30, 1, 7), options);
  auto a = service.submit(Request::Distance(0, 1));
  auto b = service.submit(Request::Distance(0, 2));
  auto c = service.submit(Request::Distance(0, 3));  // over capacity
  const auto rejected = c.get();  // resolved immediately, while paused
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);
  service.resume();
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
}

TEST(Service, ExpiredDeadlineIsRejectedNotEvaluatedLate) {
  ServiceOptions options;
  options.start_paused = true;
  EmbeddingService service(test_ensemble(30, 1, 7), options);
  Request hurried = Request::Distance(0, 1);
  hurried.deadline = std::chrono::microseconds(1000);  // 1ms
  Request patient = Request::Distance(0, 2);           // no deadline
  auto hurried_future = service.submit(hurried);
  auto patient_future = service.submit(patient);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();
  const auto late = hurried_future.get();
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(patient_future.get().ok());
  EXPECT_EQ(service.stats().rejected_deadline, 1u);
}

TEST(Service, StopRejectsQueuedAndSubsequentRequests) {
  ServiceOptions options;
  options.start_paused = true;
  EmbeddingService service(test_ensemble(30, 1, 7), options);
  auto queued = service.submit(Request::Distance(0, 1));
  service.stop();
  const auto abandoned = queued.get();
  EXPECT_FALSE(abandoned.ok());
  EXPECT_EQ(abandoned.status().code(), StatusCode::kUnavailable);
  const auto refused = service.submit(Request::Distance(0, 2)).get();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
}

TEST(Service, HammerManyClientThreadsMatchSerialAnswers) {
  // N client threads x M queries, deterministic per (thread, i); every
  // answer must equal the serial direct answer. Runs under TSan in CI.
  EmbeddingService service(test_ensemble(40, 2, 13));
  const EmbeddingEnsemble& ensemble = service.ensemble();
  const std::size_t n = ensemble.num_points();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kQueries = 150;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kQueries; ++i) {
        const std::uint64_t h = mix64(c * kQueries + i + 1);
        const std::size_t p = h % n;
        const std::size_t q = (p + 1 + (h >> 32) % (n - 1)) % n;
        const Combiner combiner =
            (h & 1) != 0 ? Combiner::kMin : Combiner::kExpected;
        auto result =
            service.submit(Request::Distance(p, q, combiner)).get();
        const double direct = combiner == Combiner::kMin
                                  ? ensemble.min_distance(p, q)
                                  : ensemble.expected_distance(p, q);
        if (!result.ok() || result->value != direct) {
          failures[c] = "thread " + std::to_string(c) + " query " +
                        std::to_string(i) + " mismatch";
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kThreads * kQueries);
  EXPECT_GT(stats.qps, 0.0);
}

// --------------------------------------------------------------- server

TEST(Server, AnswersWireQueriesOverLoopback) {
  EmbeddingService service(test_ensemble());
  SocketServer server(service);  // port 0: ephemeral
  const auto port = server.start();
  ASSERT_TRUE(port.ok()) << port.status().to_string();

  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", *port).ok());
  const auto info = client.roundtrip("info");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(*info, format_info(service.num_points(), service.num_trees(),
                               service.epoch(), service.dim()));
  EXPECT_EQ(service.epoch(), 0u);  // static service serves epoch 0

  const auto distance = client.roundtrip("dist 1 2");
  ASSERT_TRUE(distance.ok());
  const auto direct = service.evaluate(Request::Distance(1, 2));
  EXPECT_EQ(*distance, format_response(direct));

  const auto knn = client.roundtrip("knn 0 3");
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(is_ok_line(*knn));
  const auto bad = client.roundtrip("dist 0");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(is_ok_line(*bad));

  // Pipelined burst: one write, responses in order.
  ASSERT_TRUE(client.send_line("dist 3 4\ndist 5 6\nrange 0 100").ok());
  for (int i = 0; i < 3; ++i) {
    const auto reply = client.read_line();
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(is_ok_line(*reply)) << *reply;
  }

  const auto stats_line = client.roundtrip("stats");
  ASSERT_TRUE(stats_line.ok());
  EXPECT_TRUE(is_ok_line(*stats_line));

  LineClient closer;
  ASSERT_TRUE(closer.connect("127.0.0.1", *port).ok());
  const auto ack = closer.roundtrip("shutdown");
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*ack, "ok shutdown");
  server.wait();  // returns because a client requested shutdown
  server.stop();
}

// -------------------------------------------------------- dynamic serving

std::unique_ptr<dyn::DynamicEnsemble> test_dynamic_ensemble(
    std::size_t n = 40, std::size_t trees = 2, std::uint64_t seed = 5) {
  const PointSet points = generate_uniform_cube(n, 3, 20.0, seed);
  dyn::DynamicEnsemble::Options options;
  options.trees = trees;
  options.member.seed = seed;
  auto result = dyn::DynamicEnsemble::create(points, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

TEST(WireProtocol, ParsesUpdateVerbs) {
  const auto upsert = parse_request("upsert 1.5 -2 3e1");
  ASSERT_TRUE(upsert.ok()) << upsert.status().to_string();
  EXPECT_EQ(upsert->kind, RequestKind::kUpsert);
  EXPECT_EQ(upsert->coords, (std::vector<double>{1.5, -2.0, 30.0}));

  const auto remove = parse_request("remove 17");
  ASSERT_TRUE(remove.ok()) << remove.status().to_string();
  EXPECT_EQ(remove->kind, RequestKind::kRemove);
  EXPECT_EQ(remove->id, 17u);

  EXPECT_FALSE(parse_request("upsert").ok());
  EXPECT_FALSE(parse_request("upsert 1.0 nope").ok());
  EXPECT_FALSE(parse_request("remove").ok());
  EXPECT_FALSE(parse_request("remove 1 2").ok());
}

TEST(WireProtocol, FormatsUpdateResponsesAndInfoWithEpoch) {
  Response response;
  response.kind = RequestKind::kUpsert;
  response.id = 12;
  response.epoch = 4;
  EXPECT_EQ(format_response(Result<Response>(response)),
            "ok upsert id=12 epoch=4");
  response.kind = RequestKind::kRemove;
  EXPECT_EQ(format_response(Result<Response>(response)),
            "ok remove id=12 epoch=4");
  EXPECT_EQ(format_info(100, 4, 7, 3),
            "ok info points=100 trees=4 epoch=7 dim=3");
}

TEST(DynamicService, StaticServiceRejectsUpdates) {
  EmbeddingService service(test_ensemble());
  const std::vector<double> p = {1.0, 2.0, 3.0};
  auto upsert = service.submit(Request::Upsert(p)).get();
  EXPECT_EQ(upsert.status().code(), StatusCode::kInvalidArgument);
  auto remove = service.submit(Request::Remove(0)).get();
  EXPECT_EQ(remove.status().code(), StatusCode::kInvalidArgument);
  // evaluate() refuses updates outright (they mutate state).
  EXPECT_FALSE(service.evaluate(Request::Remove(0)).ok());
}

TEST(DynamicService, UpsertRemovePublishEpochsAndStampResponses) {
  EmbeddingService service(test_dynamic_ensemble());
  ASSERT_TRUE(service.is_dynamic());
  EXPECT_EQ(service.epoch(), 1u);  // create() published epoch 1
  const std::size_t initial_points = service.num_points();

  const std::vector<double> p = {3.0, 4.0, 5.0};
  auto upsert = service.submit(Request::Upsert(p)).get();
  ASSERT_TRUE(upsert.ok()) << upsert.status().to_string();
  EXPECT_EQ(upsert->id, initial_points);
  EXPECT_GE(upsert->epoch, 2u);
  EXPECT_EQ(service.num_points(), initial_points + 1);

  auto remove = service.submit(Request::Remove(upsert->id)).get();
  ASSERT_TRUE(remove.ok()) << remove.status().to_string();
  EXPECT_EQ(remove->id, upsert->id);
  EXPECT_GT(remove->epoch, upsert->epoch);
  EXPECT_EQ(service.num_points(), initial_points);

  // Unknown id surfaces the dyn layer's rejection through the batcher.
  auto bad = service.submit(Request::Remove(9999)).get();
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Queries against the dynamic service carry the epoch they reflect and
  // match the direct oracle.
  auto queried = service.submit(Request::Distance(1, 2)).get();
  ASSERT_TRUE(queried.ok());
  EXPECT_EQ(queried->epoch, service.epoch());
  auto direct = service.evaluate(Request::Distance(1, 2));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(queried->value, direct->value);
}

TEST(DynamicService, CacheNeverServesAcrossEpochs) {
  // Distances are cached per epoch: after an update republishes, the same
  // query must be recomputed against the new ensemble, not answered from
  // the superseded epoch's cache entry.
  EmbeddingService service(test_dynamic_ensemble(30));
  auto before = service.submit(Request::Distance(3, 4)).get();
  ASSERT_TRUE(before.ok());
  auto cached = service.submit(Request::Distance(3, 4)).get();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->value, before->value);
  const auto hits_before = service.stats().cache_hits;

  const std::vector<double> p = {9.0, 9.0, 9.0};
  ASSERT_TRUE(service.submit(Request::Upsert(p)).get().ok());

  auto after = service.submit(Request::Distance(3, 4)).get();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value, before->value);  // same points, same answer
  // The post-publish query missed the cache (fresh epoch in the key).
  EXPECT_EQ(service.stats().cache_hits, hits_before);
}

TEST(DynamicService, ServesUpdateVerbsOverLoopback) {
  EmbeddingService service(test_dynamic_ensemble());
  SocketServer server(service);
  const auto port = server.start();
  ASSERT_TRUE(port.ok()) << port.status().to_string();

  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", *port).ok());
  const std::size_t points_before = service.num_points();

  const auto upsert = client.roundtrip("upsert 1.0 2.0 3.0");
  ASSERT_TRUE(upsert.ok());
  EXPECT_EQ(*upsert, "ok upsert id=" + std::to_string(points_before) +
                         " epoch=" + std::to_string(service.epoch()));

  const auto info = client.roundtrip("info");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(*info, format_info(points_before + 1, service.num_trees(),
                               service.epoch(), service.dim()));

  const auto removed = client.roundtrip(
      "remove " + std::to_string(points_before));
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(is_ok_line(*removed)) << *removed;
  EXPECT_EQ(service.num_points(), points_before);

  const auto bad = client.roundtrip("remove notanid");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(is_ok_line(*bad));

  server.stop();
}

}  // namespace
}  // namespace mpte::serve
