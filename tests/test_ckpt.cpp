// mpte::ckpt — snapshots, deterministic fault injection, crash recovery.
//
// The load-bearing test is the crash sweep: inject a crash at EVERY round
// of the golden-seed mpc_embed configuration (test_mpc_channels.cpp),
// recover from the newest checkpoint, and require the recovered embedding
// to match the golden fingerprint byte for byte — at 1 and 8 cluster
// threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "ckpt/fault.hpp"
#include "ckpt/manager.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/snapshot.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "mpc/primitives.hpp"
#include "tree/hst_io.hpp"

namespace mpte::ckpt {
namespace {

namespace fs = std::filesystem;

using mpc::CheckpointPolicy;
using mpc::Cluster;
using mpc::ClusterConfig;
using mpc::KV;
using mpc::MachineContext;
using mpc::RankCrashed;

/// Fresh per-test scratch directory (removed up front, not after, so a
/// failing test leaves its snapshots around for inspection).
fs::path scratch_dir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("mpte_ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The golden-seed configuration from test_mpc_channels.cpp.
constexpr std::uint64_t kGoldenHash = 8852295253212578257ull;

ClusterConfig golden_config(std::size_t threads) {
  ClusterConfig config;
  config.num_machines = 6;
  config.local_memory_bytes = 1 << 22;
  config.enforce_limits = true;
  config.num_threads = threads;
  return config;
}

MpcEmbedOptions golden_options() {
  MpcEmbedOptions options;
  options.seed = 99;
  options.num_buckets = 2;
  options.delta = 1024;
  options.use_fjlt = false;
  return options;
}

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fingerprint(const MpcEmbedding& result) {
  const auto tree_bytes = hst_to_bytes(result.tree);
  std::uint64_t h =
      fnv1a(tree_bytes.data(), tree_bytes.size(), 1469598103934665603ull);
  const auto& raw = result.embedded_points.raw();
  h = fnv1a(reinterpret_cast<const std::uint8_t*>(raw.data()),
            raw.size() * sizeof(double), h);
  return h;
}

/// Runs a few communication rounds so the cluster holds nontrivial state:
/// scattered vectors, a shuffle, and a pending driver note.
void run_sample_workload(Cluster& cluster) {
  std::vector<KV> records;
  for (std::uint64_t i = 0; i < 64; ++i) records.push_back(KV{i % 8, i});
  mpc::scatter_vector(cluster, "in", records);
  mpc::reduce_kv_sum(cluster, "in", "sums");
  mpc::sum_u64(cluster, "missing", "total", 0);
  cluster.set_driver_note(mpc::Buffer(std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Snapshot, RoundTripRestoresEveryRankByteIdentically) {
  Cluster original(ClusterConfig{4, 1 << 20, true});
  run_sample_workload(original);

  const Snapshot snapshot = Snapshot::capture(original, {0, 1, 0});
  EXPECT_EQ(snapshot.rounds, original.stats().rounds());

  const auto bytes = snapshot.to_bytes();
  const auto decoded = Snapshot::from_bytes(bytes, "test");
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->rounds, snapshot.rounds);
  EXPECT_EQ(decoded->fault_cursor, snapshot.fault_cursor);

  Cluster restored(ClusterConfig{4, 1 << 20, true});
  restored.resume_from(std::move(const_cast<Snapshot&>(*decoded).state));
  ASSERT_EQ(restored.stats().rounds(), original.stats().rounds());
  for (mpc::MachineId id = 0; id < original.num_machines(); ++id) {
    const auto want = original.store(id).entries();
    const auto got = restored.store(id).entries();
    ASSERT_EQ(want.size(), got.size()) << "rank " << id;
    for (std::size_t e = 0; e < want.size(); ++e) {
      EXPECT_EQ(want[e].first, got[e].first) << "rank " << id;
      const auto a = want[e].second.span();
      const auto b = got[e].second.span();
      ASSERT_EQ(a.size(), b.size()) << "rank " << id << " " << want[e].first;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "rank " << id << " " << want[e].first;
    }
  }
  const auto note = restored.driver_note().span();
  ASSERT_EQ(note.size(), 3u);
  EXPECT_EQ(note[1], 2u);
}

TEST(Snapshot, FileRoundTripAndCorruptionRejection) {
  const fs::path dir = scratch_dir("file_roundtrip");
  Cluster cluster(ClusterConfig{3, 1 << 20, true});
  run_sample_workload(cluster);

  const Snapshot snapshot = Snapshot::capture(cluster);
  const std::string path = (dir / "snap.mpck").string();
  ASSERT_TRUE(snapshot.write(path).ok());
  const auto loaded = Snapshot::read(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->rounds, snapshot.rounds);

  // A flipped payload byte must be rejected with a Status, not decoded.
  auto bytes = snapshot.to_bytes();
  bytes[bytes.size() / 2] ^= 0x40;
  const auto corrupt = Snapshot::from_bytes(bytes, "corrupt");
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);

  // Truncation likewise.
  auto truncated = snapshot.to_bytes();
  truncated.resize(truncated.size() / 2);
  const auto trunc = Snapshot::from_bytes(truncated, "truncated");
  ASSERT_FALSE(trunc.ok());
  EXPECT_EQ(trunc.status().code(), StatusCode::kInvalidArgument);
}

TEST(Coordinator, CorruptNewestSnapshotFallsBackToOlderOne) {
  const fs::path dir = scratch_dir("fallback");
  CheckpointPolicy policy;
  policy.mode = CheckpointPolicy::Mode::kEveryK;
  policy.directory = dir.string();
  policy.every_k = 1;
  policy.keep = 8;

  Cluster cluster(ClusterConfig{3, 1 << 20, true});
  Coordinator coordinator(policy);
  cluster.set_hooks(&coordinator);
  run_sample_workload(cluster);
  const auto paths = Coordinator::snapshot_paths(dir.string());
  ASSERT_GE(paths.size(), 2u);

  // Corrupt the newest file; load_latest must fall back to the previous.
  {
    std::fstream f(paths.back(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(24);
    const char byte = static_cast<char>(f.get());
    f.seekp(24);
    f.put(static_cast<char>(byte ^ 0x7f));
  }
  const auto latest = coordinator.load_latest();
  ASSERT_TRUE(latest.ok()) << latest.status().to_string();
  EXPECT_LT(latest->rounds, cluster.stats().rounds());

  // With every file corrupted, restore_latest degrades to a full restart.
  for (const auto& path : Coordinator::snapshot_paths(dir.string())) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  coordinator.restore_latest(cluster);
  EXPECT_EQ(cluster.stats().rounds(), 0u);
  EXPECT_EQ(cluster.stats().resilience().recoveries, 1u);
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultPlan::Options options;
  options.crashes = 3;
  options.drops = 5;
  options.duplicates = 4;
  options.round_horizon = 16;
  const FaultPlan a = FaultPlan::generate(42, 6, options);
  const FaultPlan b = FaultPlan::generate(42, 6, options);
  ASSERT_EQ(a.events().size(), 12u);
  EXPECT_EQ(a.events(), b.events());
  const FaultPlan c = FaultPlan::generate(43, 6, options);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultPlan, ScheduleIsIndependentOfClusterThreadCount) {
  // The same seeded plan drives clusters at 1 and 8 threads; the events
  // that actually fire (the consumption cursor) must match exactly.
  std::vector<std::vector<std::uint8_t>> cursors;
  for (const std::size_t threads : {1u, 8u}) {
    FaultPlan::Options options;
    options.drops = 6;
    options.duplicates = 6;
    options.round_horizon = 8;
    FaultPlan plan = FaultPlan::generate(7, 4, options);
    ClusterConfig config{4, 1 << 20, true};
    config.num_threads = threads;
    Cluster cluster(config);
    Coordinator coordinator(CheckpointPolicy{}, std::move(plan));
    cluster.set_hooks(&coordinator);
    run_sample_workload(cluster);
    cursors.push_back(coordinator.plan().consumed_flags());
  }
  EXPECT_EQ(cursors[0], cursors[1]);
}

TEST(FaultPlan, DropsAndDuplicatesPerturbCountersNotBytes) {
  // Masked faults: delivered bytes (and therefore results) are identical
  // with and without them; only the resilience counters move.
  auto run = [](FaultPlan plan, std::uint64_t* out_sum) {
    Cluster cluster(ClusterConfig{4, 1 << 20, true});
    Coordinator coordinator(CheckpointPolicy{}, std::move(plan));
    cluster.set_hooks(&coordinator);
    std::vector<KV> records;
    for (std::uint64_t i = 0; i < 64; ++i) records.push_back(KV{i % 4, i});
    mpc::scatter_vector(cluster, "in", records);
    mpc::reduce_kv_sum(cluster, "in", "sums");
    std::uint64_t sum = 0;
    for (const KV& kv : mpc::gather_vector<KV>(cluster, "sums")) {
      sum += kv.key ^ kv.value;
    }
    *out_sum = sum;
    return cluster.stats().resilience();
  };

  std::uint64_t clean_sum = 0, faulty_sum = 0;
  const auto clean = run(FaultPlan{}, &clean_sum);
  EXPECT_EQ(clean.drops_retransmitted, 0u);

  FaultPlan::Options options;
  options.drops = 4;
  options.duplicates = 4;
  options.round_horizon = 2;
  const auto faulty =
      run(FaultPlan::generate(3, 4, options), &faulty_sum);
  EXPECT_EQ(clean_sum, faulty_sum);
  EXPECT_GT(faulty.drops_retransmitted + faulty.duplicates_suppressed, 0u);
}

/// Fault-free golden run: returns the fingerprint (asserting it matches
/// the pinned hash) and the total committed round count.
std::pair<std::uint64_t, std::size_t> golden_run(std::size_t threads) {
  Cluster cluster(golden_config(threads));
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  const auto result = mpc_embed(cluster, points, golden_options());
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return {fingerprint(*result), cluster.stats().rounds()};
}

TEST(Recovery, CrashAtEveryRoundRecoversGoldenFingerprint) {
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  for (const std::size_t threads : {1u, 8u}) {
    const auto [golden, total_rounds] = golden_run(threads);
    ASSERT_EQ(golden, kGoldenHash) << "threads=" << threads;
    ASSERT_GT(total_rounds, 0u);

    for (std::size_t crash_round = 0; crash_round < total_rounds;
         ++crash_round) {
      const fs::path dir = scratch_dir(
          "sweep_t" + std::to_string(threads) + "_r" +
          std::to_string(crash_round));
      ClusterConfig config = golden_config(threads);
      config.checkpoint.mode = CheckpointPolicy::Mode::kEveryK;
      config.checkpoint.directory = dir.string();
      config.checkpoint.every_k = 1;
      Cluster cluster(config);

      FaultPlan plan;
      plan.add_crash(crash_round,
                     crash_round % config.num_machines);
      Coordinator coordinator = Coordinator::for_cluster(cluster,
                                                         std::move(plan));
      cluster.set_hooks(&coordinator);

      const auto result = run_with_recovery(cluster, coordinator, [&] {
        return mpc_embed(cluster, points, golden_options());
      });
      ASSERT_TRUE(result.ok())
          << "threads=" << threads << " crash_round=" << crash_round << ": "
          << result.status().to_string();
      EXPECT_EQ(fingerprint(*result), kGoldenHash)
          << "threads=" << threads << " crash_round=" << crash_round;

      const auto& resilience = cluster.stats().resilience();
      EXPECT_EQ(resilience.crashes_injected, 1u);
      EXPECT_EQ(resilience.recoveries, 1u);
      // A crash at round r restores the checkpoint of round r-1: exactly
      // r rounds are fast-forwarded.
      EXPECT_EQ(resilience.rounds_replayed, crash_round);
      EXPECT_TRUE(coordinator.last_write_status().ok());
      fs::remove_all(dir);
    }
  }
}

TEST(Recovery, ByteBudgetPolicyCheckpointsAndRecovers) {
  const fs::path dir = scratch_dir("byte_budget");
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  ClusterConfig config = golden_config(1);
  config.checkpoint.mode = CheckpointPolicy::Mode::kByteBudget;
  config.checkpoint.directory = dir.string();
  config.checkpoint.byte_budget = 4096;
  Cluster cluster(config);

  FaultPlan plan;
  plan.add_crash(11, 2);
  Coordinator coordinator = Coordinator::for_cluster(cluster,
                                                     std::move(plan));
  cluster.set_hooks(&coordinator);
  const auto result = run_with_recovery(cluster, coordinator, [&] {
    return mpc_embed(cluster, points, golden_options());
  });
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(fingerprint(*result), kGoldenHash);
  EXPECT_GT(cluster.stats().resilience().checkpoints_written, 0u);
  // Byte-budget snapshots are sparser than every-round ones, so recovery
  // typically replays a non-checkpointed suffix; either way, counters add
  // up in the summary.
  EXPECT_NE(cluster.stats().summary().find("ckpt:"), std::string::npos);
}

TEST(Recovery, RestartModeRecoversWithoutAnySnapshots) {
  // Policy off: the recovery loop's restart mode re-runs from round zero.
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  Cluster cluster(golden_config(1));
  FaultPlan plan;
  plan.add_crash(7, 3);
  Coordinator coordinator(CheckpointPolicy{}, std::move(plan));
  cluster.set_hooks(&coordinator);

  RecoveryOptions options;
  options.mode = RecoveryOptions::Mode::kRestart;
  const auto result = run_with_recovery(
      cluster, coordinator,
      [&] { return mpc_embed(cluster, points, golden_options()); }, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(fingerprint(*result), kGoldenHash);
  EXPECT_EQ(cluster.stats().resilience().recoveries, 1u);
}

TEST(Recovery, ExhaustedRestoreBudgetIsAborted) {
  const PointSet points = generate_uniform_cube(150, 8, 30.0, 7);
  Cluster cluster(golden_config(1));
  // More crashes at round 0 than the recovery budget allows.
  FaultPlan plan;
  for (std::size_t i = 0; i < 4; ++i) plan.add_crash(0, 1);
  Coordinator coordinator(CheckpointPolicy{}, std::move(plan));
  cluster.set_hooks(&coordinator);

  RecoveryOptions options;
  options.mode = RecoveryOptions::Mode::kRestart;
  options.max_recoveries = 2;
  const auto result = run_with_recovery(
      cluster, coordinator,
      [&] { return mpc_embed(cluster, points, golden_options()); }, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

TEST(RoundStats, ResilienceCountersSurviveRollbackAndPrintInSummary) {
  const fs::path dir = scratch_dir("summary");
  ClusterConfig config{4, 1 << 20, true};
  config.checkpoint.mode = CheckpointPolicy::Mode::kEveryK;
  config.checkpoint.directory = dir.string();
  Cluster cluster(config);
  Coordinator coordinator = Coordinator::for_cluster(cluster);
  cluster.set_hooks(&coordinator);
  run_sample_workload(cluster);

  coordinator.restore_latest(cluster);  // rollback path
  const auto& resilience = cluster.stats().resilience();
  EXPECT_GT(resilience.checkpoints_written, 0u);
  EXPECT_EQ(resilience.recoveries, 1u);
  const std::string summary = cluster.stats().summary();
  EXPECT_NE(summary.find("ckpt:"), std::string::npos);
  EXPECT_NE(summary.find("recoveries=1"), std::string::npos);
}

}  // namespace
}  // namespace mpte::ckpt
