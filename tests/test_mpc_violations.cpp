// Failure injection against the MPC model audit: every constraint the
// simulator enforces must actually fire, at the boundary, from every
// layer that can breach it — primitives, pipelines, applications.
#include <gtest/gtest.h>

#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sort.hpp"

namespace mpte::mpc {
namespace {

TEST(Violations, SendExactlyAtCapIsAllowed) {
  Cluster cluster(ClusterConfig{2, 128, true});
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(128));
  });
  EXPECT_EQ(cluster.stats().records()[0].max_sent_bytes, 128u);
}

TEST(Violations, SendOneByteOverCapThrows) {
  Cluster cluster(ClusterConfig{2, 128, true});
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(129));
  }),
               MpcViolation);
}

TEST(Violations, AggregateSendsCountAgainstQuota) {
  // Two sends of 70B to different destinations = 140B sent > 128B cap.
  Cluster cluster(ClusterConfig{3, 128, true});
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) {
      ctx.send(1, std::vector<std::uint8_t>(70));
      ctx.send(2, std::vector<std::uint8_t>(70));
    }
  }),
               MpcViolation);
}

TEST(Violations, InboxCountsTowardResidency) {
  // Store is fine, message is fine, but store + inbox crosses the cap at
  // the round boundary.
  Cluster cluster(ClusterConfig{2, 128, true});
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 1) {
      ctx.store().set_blob("held", std::vector<std::uint8_t>(100));
    }
  });
  EXPECT_THROW(cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(100));
  }),
               MpcViolation);
}

TEST(Violations, ViolationMessageNamesRoundAndMachine) {
  Cluster cluster(ClusterConfig{2, 64, true});
  try {
    cluster.run_round(
        [](MachineContext& ctx) {
          if (ctx.id() == 1) ctx.send(0, std::vector<std::uint8_t>(100));
        },
        "my-round");
    FAIL() << "expected MpcViolation";
  } catch (const MpcViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my-round"), std::string::npos);
    EXPECT_NE(what.find("machine 1"), std::string::npos);
  }
}

TEST(Violations, BroadcastBlobTooBigForFanoutThrows) {
  // Blob * fanout exceeds the sender's quota.
  Cluster cluster(ClusterConfig{8, 256, true});
  cluster.store(0).set_blob("b", std::vector<std::uint8_t>(200));
  EXPECT_THROW(broadcast_blob(cluster, 0, "b", 4), MpcViolation);
}

TEST(Violations, ShuffleOverloadThrows) {
  // All records share one key: the receiving machine blows its cap.
  Cluster cluster(ClusterConfig{4, 512, true});
  std::vector<KV> records(200, KV{7, 7});
  scatter_vector(cluster, "in", records);
  EXPECT_THROW(shuffle_kv_by_key(cluster, "in", "out"), MpcViolation);
}

TEST(Violations, EmbedderSurfacesViolationWhenClusterTooSmall) {
  // 2 machines x 2KB cannot hold 300 points' paths; the model audit, not
  // a crash or a wrong answer, must stop the run.
  Cluster cluster(ClusterConfig{2, 2048, true});
  const PointSet points = generate_uniform_cube(300, 4, 20.0, 3);
  MpcEmbedOptions options;
  options.use_fjlt = false;
  options.delta = 256;
  EXPECT_THROW((void)mpc_embed(cluster, points, options), MpcViolation);
}

TEST(Violations, DisabledEnforcementRecordsInsteadOfThrowing) {
  Cluster cluster(ClusterConfig{2, 64, false});
  cluster.run_round([](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(1, std::vector<std::uint8_t>(1000));
  });
  EXPECT_EQ(cluster.stats().peak_round_io_bytes(), 1000u);
}

TEST(Violations, SampleSortSurvivesAtGenerousCap) {
  // Control: the same primitive passes cleanly with room to breathe —
  // the audits do not false-positive.
  Cluster cluster(ClusterConfig{4, 1 << 16, true});
  std::vector<KV> records;
  for (std::uint64_t i = 0; i < 500; ++i) records.push_back(KV{i * 7, i});
  scatter_vector(cluster, "in", records);
  EXPECT_NO_THROW(sample_sort_kv(cluster, "in", "out"));
}

}  // namespace
}  // namespace mpte::mpc
