#include "core/ensemble.hpp"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "geometry/generators.hpp"

namespace mpte {
namespace {

EmbedOptions base_options() {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 5;
  return options;
}

TEST(Ensemble, BuildValidations) {
  const PointSet points = generate_uniform_cube(30, 3, 20.0, 1);
  EXPECT_FALSE(EmbeddingEnsemble::build(points, base_options(), 0).ok());
  EXPECT_FALSE(
      EmbeddingEnsemble::build(PointSet(1, 3), base_options(), 2).ok());
}

TEST(Ensemble, MembersAreIndependentTrees) {
  const PointSet points = generate_uniform_cube(40, 3, 20.0, 3);
  const auto ensemble = EmbeddingEnsemble::build(points, base_options(), 4);
  ASSERT_TRUE(ensemble.ok());
  EXPECT_EQ(ensemble->size(), 4u);
  // At least one pair of members disagrees somewhere (independent seeds).
  bool any_difference = false;
  for (std::size_t i = 0; i < 40 && !any_difference; ++i) {
    for (std::size_t j = i + 1; j < 40 && !any_difference; ++j) {
      if (ensemble->member(0).distance(i, j) !=
          ensemble->member(1).distance(i, j)) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Ensemble, MinDominatesAndBeatsMean) {
  const PointSet points = generate_uniform_cube(50, 4, 30.0, 7);
  const auto ensemble = EmbeddingEnsemble::build(points, base_options(), 6);
  ASSERT_TRUE(ensemble.ok());
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      const double true_dist = l2_distance(points[i], points[j]);
      const double min_est = ensemble->min_distance(i, j);
      const double mean_est = ensemble->expected_distance(i, j);
      EXPECT_LE(min_est, mean_est + 1e-12);
      // Domination up to the quantization budget.
      EXPECT_GE(min_est, (1.0 - 0.06) * true_dist);
    }
  }
}

TEST(Ensemble, MinEstimateTightensWithMoreTrees) {
  const PointSet points = generate_uniform_cube(60, 4, 30.0, 9);
  const auto small = EmbeddingEnsemble::build(points, base_options(), 2);
  const auto large = EmbeddingEnsemble::build(points, base_options(), 10);
  ASSERT_TRUE(small.ok() && large.ok());
  // Aggregate over pairs: the 10-tree lower envelope is no worse, and on
  // average strictly better, than the 2-tree one (members 0-1 coincide).
  double sum_small = 0.0, sum_large = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      sum_small += small->min_distance(i, j);
      sum_large += large->min_distance(i, j);
    }
  }
  EXPECT_LE(sum_large, sum_small + 1e-9);
  EXPECT_LT(sum_large, sum_small * 0.999);
}

TEST(Ensemble, ParallelBuildIsByteIdenticalToSerial) {
  // Member seeds are pure functions of (root seed, index), so building
  // on 1 thread and on many must produce identical trees.
  const PointSet points = generate_uniform_cube(40, 3, 20.0, 17);
  const auto serial = EmbeddingEnsemble::build(points, base_options(), 5,
                                               /*threads=*/1);
  const auto parallel = EmbeddingEnsemble::build(points, base_options(), 5,
                                                 /*threads=*/8);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t t = 0; t < serial->size(); ++t) {
    EXPECT_EQ(serial->member(t).tree.num_nodes(),
              parallel->member(t).tree.num_nodes());
  }
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      EXPECT_EQ(serial->min_distance(i, j), parallel->min_distance(i, j));
      EXPECT_EQ(serial->expected_distance(i, j),
                parallel->expected_distance(i, j));
    }
  }
}

TEST(Ensemble, IndexedDistancesMatchWalkOracle) {
  // The binary-lifting query path must agree with the O(depth) walk.
  const PointSet points = generate_uniform_cube(35, 3, 20.0, 19);
  const auto ensemble = EmbeddingEnsemble::build(points, base_options(), 3);
  ASSERT_TRUE(ensemble.ok());
  for (std::size_t i = 0; i < 35; ++i) {
    for (std::size_t j = i; j < 35; ++j) {
      double walk_min = std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < ensemble->size(); ++t) {
        walk_min = std::min(walk_min, ensemble->member(t).distance(i, j));
        EXPECT_NEAR(
            ensemble->index(t).distance(i, j) *
                ensemble->member(t).scale_to_input,
            ensemble->member(t).distance(i, j),
            1e-9 * (1.0 + ensemble->member(t).distance(i, j)));
      }
      EXPECT_NEAR(ensemble->min_distance(i, j), walk_min,
                  1e-9 * (1.0 + walk_min));
    }
  }
}

TEST(Ensemble, FromMembersValidatesShapes) {
  const PointSet points = generate_uniform_cube(20, 3, 20.0, 23);
  const PointSet other = generate_uniform_cube(25, 3, 20.0, 23);
  EXPECT_FALSE(EmbeddingEnsemble::from_members({}).ok());
  std::vector<Embedding> mismatched;
  mismatched.push_back(std::move(embed(points, base_options())).value());
  mismatched.push_back(std::move(embed(other, base_options())).value());
  EXPECT_FALSE(EmbeddingEnsemble::from_members(std::move(mismatched)).ok());
  std::vector<Embedding> matched;
  matched.push_back(std::move(embed(points, base_options())).value());
  matched.push_back(std::move(embed(points, base_options())).value());
  const auto ensemble = EmbeddingEnsemble::from_members(std::move(matched));
  ASSERT_TRUE(ensemble.ok());
  EXPECT_EQ(ensemble->size(), 2u);
  EXPECT_EQ(ensemble->num_points(), 20u);
}

TEST(Ensemble, DeterministicGivenSeed) {
  const PointSet points = generate_uniform_cube(25, 3, 20.0, 11);
  const auto a = EmbeddingEnsemble::build(points, base_options(), 3);
  const auto b = EmbeddingEnsemble::build(points, base_options(), 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t i = 0; i < 25; ++i) {
    for (std::size_t j = i + 1; j < 25; ++j) {
      EXPECT_EQ(a->min_distance(i, j), b->min_distance(i, j));
      EXPECT_EQ(a->expected_distance(i, j), b->expected_distance(i, j));
    }
  }
}

}  // namespace
}  // namespace mpte
