#include "common/status.hpp"

#include <gtest/gtest.h>

namespace mpte {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kCoverageFailure, "level 3 bucket 1");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCoverageFailure);
  EXPECT_EQ(s.message(), "level 3 bucket 1");
  EXPECT_EQ(s.to_string(), "coverage-failure: level 3 bucket 1");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kCoverageFailure), "coverage-failure");
  EXPECT_STREQ(to_string(StatusCode::kInvalidArgument), "invalid-argument");
  EXPECT_STREQ(to_string(StatusCode::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(to_string(StatusCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(to_string(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(to_string(StatusCode::kAborted), "aborted");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "internal");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status(StatusCode::kInvalidArgument, "bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, UnwrappingErrorThrows) {
  Result<int> r(Status(StatusCode::kInternal, "boom"));
  EXPECT_THROW((void)r.value(), MpteError);
}

TEST(Result, ConstructingFromOkStatusThrows) {
  EXPECT_THROW(Result<int>{Status::Ok()}, MpteError);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace mpte
