#include "apps/min_cost_flow.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace mpte {
namespace {

TEST(MinCostFlow, SingleEdge) {
  MinCostFlow mcf(2);
  mcf.add_edge(0, 1, 5, 2.0);
  const auto result = mcf.solve(0, 1, 10);
  EXPECT_EQ(result.flow, 5);
  EXPECT_DOUBLE_EQ(result.cost, 10.0);
}

TEST(MinCostFlow, PrefersCheaperPath) {
  // Two parallel paths: cost 1 (cap 3) and cost 5 (cap 10).
  MinCostFlow mcf(4);
  mcf.add_edge(0, 1, 3, 0.5);
  mcf.add_edge(1, 3, 3, 0.5);
  mcf.add_edge(0, 2, 10, 2.5);
  mcf.add_edge(2, 3, 10, 2.5);
  const auto result = mcf.solve(0, 3, 5);
  EXPECT_EQ(result.flow, 5);
  EXPECT_DOUBLE_EQ(result.cost, 3 * 1.0 + 2 * 5.0);
}

TEST(MinCostFlow, RespectsMaxFlowCap) {
  MinCostFlow mcf(2);
  mcf.add_edge(0, 1, 100, 1.0);
  const auto result = mcf.solve(0, 1, 7);
  EXPECT_EQ(result.flow, 7);
  EXPECT_DOUBLE_EQ(result.cost, 7.0);
}

TEST(MinCostFlow, DisconnectedReturnsZero) {
  MinCostFlow mcf(3);
  mcf.add_edge(0, 1, 1, 1.0);
  const auto result = mcf.solve(0, 2, 5);
  EXPECT_EQ(result.flow, 0);
  EXPECT_EQ(result.cost, 0.0);
}

TEST(MinCostFlow, FlowOnEdgeReporting) {
  MinCostFlow mcf(3);
  const auto e0 = mcf.add_edge(0, 1, 4, 1.0);
  const auto e1 = mcf.add_edge(1, 2, 2, 1.0);
  (void)mcf.solve(0, 2, 10);
  EXPECT_EQ(mcf.flow_on(e0), 2);
  EXPECT_EQ(mcf.flow_on(e1), 2);
  EXPECT_EQ(mcf.residual_capacity(e0), 2);
}

TEST(MinCostFlow, NegativeCostRejected) {
  MinCostFlow mcf(2);
  EXPECT_THROW(mcf.add_edge(0, 1, 1, -1.0), MpteError);
}

TEST(MinCostFlow, OutOfRangeNodeRejected) {
  MinCostFlow mcf(2);
  EXPECT_THROW(mcf.add_edge(0, 5, 1, 1.0), MpteError);
}

TEST(MinCostFlow, UsesResidualReversal) {
  // Classic case where the optimum needs to reroute earlier flow:
  //   0 -> 1 (cap 1, cost 1), 0 -> 2 (cap 1, cost 2),
  //   1 -> 2 (cap 1, cost 0), 1 -> 3 (cap 1, cost 2), 2 -> 3 (cap 1, cost 1)
  // Max flow 2 with min cost: 0-1-2-3 (2) + 0-2? cap used... optimal cost 6.
  MinCostFlow mcf(4);
  mcf.add_edge(0, 1, 1, 1.0);
  mcf.add_edge(0, 2, 1, 2.0);
  mcf.add_edge(1, 2, 1, 0.0);
  mcf.add_edge(1, 3, 1, 2.0);
  mcf.add_edge(2, 3, 1, 1.0);
  const auto result = mcf.solve(0, 3, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
}

TEST(MinCostFlow, MatchesBruteForceAssignment) {
  // Random 5x5 assignment; compare against exhaustive permutations.
  Rng rng(13);
  const std::size_t n = 5;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform(0.0, 10.0);
  }

  MinCostFlow mcf(2 * n + 2);
  const std::size_t source = 0, sink = 2 * n + 1;
  for (std::size_t i = 0; i < n; ++i) {
    mcf.add_edge(source, 1 + i, 1, 0.0);
    mcf.add_edge(1 + n + i, sink, 1, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      mcf.add_edge(1 + i, 1 + n + j, 1, cost[i][j]);
    }
  }
  const auto result = mcf.solve(source, sink, n);
  ASSERT_EQ(result.flow, static_cast<std::int64_t>(n));

  std::vector<std::size_t> perm{0, 1, 2, 3, 4};
  double best = 1e18;
  do {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(result.cost, best, 1e-9);
}

}  // namespace
}  // namespace mpte
