#include "transform/mpc_fjlt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/generators.hpp"

namespace mpte {
namespace {

using mpc::Cluster;
using mpc::ClusterConfig;

TEST(MpcFjlt, LocalModeBitIdenticalToSequential) {
  const std::size_t n = 20, d = 50;
  const PointSet points = generate_uniform_cube(n, d, 5.0, 1);
  const FjltConfig config = FjltConfig::make(n, d, 0.3, 42);

  Cluster cluster(ClusterConfig{4, 1 << 20, true});
  MpcFjltReport report;
  const PointSet mpc_out = mpc_fjlt(cluster, points, config, &report);
  const PointSet seq_out = Fjlt(config).transform(points);

  EXPECT_FALSE(report.sharded);
  EXPECT_EQ(mpc_out.raw(), seq_out.raw());  // bit-identical
}

TEST(MpcFjlt, LocalModeUsesOneRound) {
  const PointSet points = generate_uniform_cube(16, 32, 1.0, 2);
  const FjltConfig config = FjltConfig::make(16, 32, 0.4, 3);
  Cluster cluster(ClusterConfig{4, 1 << 20, true});
  MpcFjltReport report;
  (void)mpc_fjlt(cluster, points, config, &report);
  EXPECT_EQ(report.rounds, 1u);
}

TEST(MpcFjlt, ShardedModeMatchesSequentialNumerically) {
  const std::size_t n = 6, d = 200;  // padded to 256
  const PointSet points = generate_uniform_cube(n, d, 3.0, 5);
  const FjltConfig config = FjltConfig::make(n, d, 0.45, 7);

  // Small local memory forces the sharded path.
  Cluster cluster(ClusterConfig{8, 8192, true});
  MpcFjltReport report;
  const PointSet mpc_out = mpc_fjlt(cluster, points, config, &report);
  const PointSet seq_out = Fjlt(config).transform(points);

  EXPECT_TRUE(report.sharded);
  EXPECT_GE(report.block_size, 16u);  // >= sqrt(256)
  ASSERT_EQ(mpc_out.size(), seq_out.size());
  ASSERT_EQ(mpc_out.dim(), seq_out.dim());
  for (std::size_t i = 0; i < mpc_out.size(); ++i) {
    for (std::size_t j = 0; j < mpc_out.dim(); ++j) {
      EXPECT_NEAR(mpc_out.coord(i, j), seq_out.coord(i, j),
                  1e-9 * (1.0 + std::abs(seq_out.coord(i, j))))
          << "point " << i << " coord " << j;
    }
  }
}

TEST(MpcFjlt, ShardedModeConstantRounds) {
  // Rounds do not depend on n in sharded mode (4 rounds).
  for (const std::size_t n : {4u, 16u}) {
    const PointSet points = generate_uniform_cube(n, 200, 3.0, 11);
    const FjltConfig config = FjltConfig::make(n, 200, 0.45, 13);
    Cluster cluster(ClusterConfig{16, n * 700, true});
    MpcFjltReport report;
    (void)mpc_fjlt(cluster, points, config, &report);
    EXPECT_TRUE(report.sharded) << "n=" << n;
    EXPECT_EQ(report.rounds, 4u) << "n=" << n;
  }
}

TEST(MpcFjlt, RespectsLocalMemoryAccounting) {
  const PointSet points = generate_uniform_cube(8, 128, 1.0, 17);
  const FjltConfig config = FjltConfig::make(8, 128, 0.45, 19);
  Cluster cluster(ClusterConfig{8, 8192, true});
  (void)mpc_fjlt(cluster, points, config);
  // Every round passed enforcement; peak stays under the configured cap.
  EXPECT_LE(cluster.stats().peak_local_bytes(), 8192u);
}

TEST(MpcFjlt, MultilevelModeMatchesSequentialNumerically) {
  // Force the general m-stage Kronecker pipeline: local memory small
  // enough that block^2 < d_padded. Enforcement is off because the tiny
  // per-machine budget makes hash-balance violations statistical noise —
  // the audited regime is covered by the two-level test; here we verify
  // the m-stage arithmetic.
  const std::size_t n = 4, d = 200;  // padded to 256
  const PointSet points = generate_uniform_cube(n, d, 3.0, 41);
  const FjltConfig config = FjltConfig::make(n, d, 0.45, 43);

  Cluster cluster(ClusterConfig{32, 400, false});
  MpcFjltReport report;
  const PointSet mpc_out = mpc_fjlt(cluster, points, config, &report);
  const PointSet seq_out = Fjlt(config).transform(points);

  EXPECT_TRUE(report.sharded);
  EXPECT_GE(report.kronecker_levels, 3u);
  // block_cap^2 < 256 forced the multilevel path.
  EXPECT_LT(report.block_size * report.block_size, 256u);
  ASSERT_EQ(mpc_out.size(), seq_out.size());
  ASSERT_EQ(mpc_out.dim(), seq_out.dim());
  for (std::size_t i = 0; i < mpc_out.size(); ++i) {
    for (std::size_t j = 0; j < mpc_out.dim(); ++j) {
      EXPECT_NEAR(mpc_out.coord(i, j), seq_out.coord(i, j),
                  1e-9 * (1.0 + std::abs(seq_out.coord(i, j))))
          << "point " << i << " coord " << j;
    }
  }
}

TEST(MpcFjlt, MultilevelRoundsScaleWithStagesNotN) {
  for (const std::size_t n : {3u, 9u}) {
    const PointSet points = generate_uniform_cube(n, 200, 3.0, 47);
    const FjltConfig config = FjltConfig::make(n, 200, 0.45, 49);
    Cluster cluster(ClusterConfig{32, 400, false});
    MpcFjltReport report;
    (void)mpc_fjlt(cluster, points, config, &report);
    // stages + 1 assembly round.
    EXPECT_EQ(report.rounds, report.kronecker_levels + 1) << "n=" << n;
  }
}

TEST(MpcFjlt, TwoLevelReportsTwoKroneckerLevels) {
  const PointSet points = generate_uniform_cube(6, 200, 3.0, 51);
  const FjltConfig config = FjltConfig::make(6, 200, 0.45, 53);
  Cluster cluster(ClusterConfig{8, 8192, true});
  MpcFjltReport report;
  (void)mpc_fjlt(cluster, points, config, &report);
  EXPECT_TRUE(report.sharded);
  EXPECT_EQ(report.kronecker_levels, 2u);
}

TEST(MpcFjlt, DimensionMismatchThrows) {
  const PointSet points = generate_uniform_cube(4, 10, 1.0, 23);
  const FjltConfig config = FjltConfig::make(4, 12, 0.4, 29);
  Cluster cluster(ClusterConfig{2, 1 << 20, true});
  EXPECT_THROW((void)mpc_fjlt(cluster, points, config), MpteError);
}

TEST(MpcFjlt, PreservesDistancesEndToEnd) {
  const std::size_t n = 30, d = 300;
  const double xi = 0.45;
  const PointSet points = generate_gaussian_clusters(n, d, 3, 10.0, 1.0, 31);
  const FjltConfig config = FjltConfig::make(n, d, xi, 37);
  Cluster cluster(ClusterConfig{8, 1 << 16, true});
  const PointSet mapped = mpc_fjlt(cluster, points, config);
  std::size_t violations = 0, pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double now = l2_distance(mapped[i], mapped[j]);
      ++pairs;
      if (now < (1 - xi) * orig || now > (1 + xi) * orig) ++violations;
    }
  }
  EXPECT_LE(violations, pairs / 50);
}

}  // namespace
}  // namespace mpte
