// mpte::dyn — the core dynamic-embedding contract.
//
// The tentpole claim: a DynamicEmbedder that has applied any insert/erase
// sequence materializes an Embedding *byte-identical* (hst_to_bytes plus
// the embedded coordinates) to a from-scratch static build over the same
// final point set, because every cluster id is a pure function of
// (seed, level, coordinates). The tests pin that equality at 1 and 8
// threads, for the hybrid and grid methods, over insert-only and mixed
// insert/erase histories; plus the epoch-publication semantics of
// DynamicEnsemble (readers snapshot immutable epochs while a writer
// mutates and republishes — the TSan leg runs this file).
#include "dyn/dynamic_ensemble.hpp"

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/embedding_io.hpp"
#include "core/ensemble.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/hst_io.hpp"

namespace mpte::dyn {
namespace {

constexpr double kBox = 30.0;

/// Uniform points in [0, kBox]^dim with the first two points pinned to the
/// box corners. The anchors make the bounding box of *any* superset or
/// anchor-preserving subset equal to [0, kBox]^dim, so the quantization
/// frame the static path derives from the final set matches the frame the
/// dynamic instance pinned at creation — the precondition for
/// byte-identity (see dyn/dynamic_embedder.hpp).
PointSet anchored_points(std::size_t n, std::size_t dim, std::uint64_t seed) {
  PointSet points(n, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    points.coord(0, j) = 0.0;
    points.coord(1, j) = kBox;
  }
  const PointSet fill = generate_uniform_cube(n - 2, dim, kBox, seed);
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      points.coord(i, j) = fill.coord(i - 2, j);
    }
  }
  return points;
}

DynOptions base_options(PartitionMethod method = PartitionMethod::kHybrid) {
  DynOptions options;
  options.method = method;
  options.seed = 41;
  options.uncovered = UncoveredPolicy::kFail;
  return options;
}

/// Asserts the dynamic instance's materialized embedding is byte-identical
/// to the static build over the same live set.
void expect_matches_static(const DynamicEmbedder& dynamic,
                           const std::map<std::uint64_t, std::vector<double>>&
                               inputs_by_id) {
  PointSet final_points;
  for (const std::uint64_t id : dynamic.live_ids()) {
    final_points.push_back(inputs_by_id.at(id));
  }
  auto statically = embed(final_points, dynamic.static_equivalent_options());
  ASSERT_TRUE(statically.ok()) << statically.status().to_string();

  auto materialized = dynamic.materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().to_string();

  EXPECT_EQ(hst_to_bytes(materialized->tree), hst_to_bytes(statically->tree));
  EXPECT_EQ(materialized->embedded_points.raw(),
            statically->embedded_points.raw());
  EXPECT_EQ(materialized->scale_to_input, statically->scale_to_input);
  EXPECT_EQ(materialized->delta_used, statically->delta_used);
  EXPECT_EQ(materialized->buckets_used, statically->buckets_used);
  EXPECT_EQ(materialized->point_ids, dynamic.live_ids());
}

// ------------------------------------------------ single-embedder identity

TEST(DynamicEmbedder, InsertOnlyMatchesStaticBuild) {
  const std::size_t dim = 6;
  const PointSet initial = anchored_points(40, dim, 7);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();

  std::map<std::uint64_t, std::vector<double>> inputs;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    inputs[i] = {initial[i].begin(), initial[i].end()};
  }
  const PointSet extra = generate_uniform_cube(25, dim, kBox, 8);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    auto id = dynamic->insert(extra[i]);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    EXPECT_EQ(*id, initial.size() + i);  // monotonic dense assignment
    inputs[*id] = {extra[i].begin(), extra[i].end()};
  }
  EXPECT_EQ(dynamic->size(), initial.size() + extra.size());
  expect_matches_static(*dynamic, inputs);
}

TEST(DynamicEmbedder, RandomInsertEraseMatchesStaticBuild) {
  const std::size_t dim = 5;
  const PointSet initial = anchored_points(30, dim, 11);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();

  std::map<std::uint64_t, std::vector<double>> inputs;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    inputs[i] = {initial[i].begin(), initial[i].end()};
  }
  Rng rng(123);
  const PointSet pool = generate_uniform_cube(200, dim, kBox, 12);
  std::size_t next_pool = 0;
  for (int step = 0; step < 120; ++step) {
    const bool do_insert =
        dynamic->size() <= 10 || rng.uniform_u64(3) != 0;  // 2:1 insert bias
    if (do_insert && next_pool < pool.size()) {
      auto id = dynamic->insert(pool[next_pool]);
      ASSERT_TRUE(id.ok()) << id.status().to_string();
      inputs[*id] = {pool[next_pool].begin(), pool[next_pool].end()};
      ++next_pool;
    } else {
      // Erase a random live non-anchor point (ids 0 and 1 are the corner
      // anchors pinning the quantization frame).
      const auto live = dynamic->live_ids();
      const std::uint64_t victim =
          live[2 + rng.uniform_u64(live.size() - 2)];
      ASSERT_TRUE(dynamic->erase(victim).ok());
      inputs.erase(victim);
    }
  }
  expect_matches_static(*dynamic, inputs);
}

TEST(DynamicEmbedder, GridMethodMatchesStaticBuild) {
  const std::size_t dim = 4;
  const PointSet initial = anchored_points(25, dim, 17);
  auto dynamic =
      DynamicEmbedder::create(initial, base_options(PartitionMethod::kGrid));
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();

  std::map<std::uint64_t, std::vector<double>> inputs;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    inputs[i] = {initial[i].begin(), initial[i].end()};
  }
  const PointSet extra = generate_uniform_cube(20, dim, kBox, 18);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    auto id = dynamic->insert(extra[i]);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    inputs[*id] = {extra[i].begin(), extra[i].end()};
  }
  ASSERT_TRUE(dynamic->erase(5).ok());
  inputs.erase(5);
  expect_matches_static(*dynamic, inputs);
}

TEST(DynamicEmbedder, UpdateGuards) {
  const PointSet initial = anchored_points(4, 3, 21);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();

  // Unknown and duplicate ids are rejected.
  EXPECT_EQ(dynamic->erase(99).code(), StatusCode::kInvalidArgument);
  const std::vector<double> p = {1.0, 2.0, 3.0};
  EXPECT_EQ(dynamic->insert_with_id(2, p).code(),
            StatusCode::kInvalidArgument);
  // Wrong dimension is rejected.
  const std::vector<double> wrong_dim = {1.0, 2.0};
  EXPECT_FALSE(dynamic->insert(wrong_dim).ok());

  // Can erase down to 2 points but not below (embed()'s own lower bound).
  EXPECT_TRUE(dynamic->erase(2).ok());
  EXPECT_TRUE(dynamic->erase(3).ok());
  EXPECT_EQ(dynamic->size(), 2u);
  EXPECT_EQ(dynamic->erase(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(dynamic->contains(0));
}

TEST(DynamicEmbedder, CellsRecomputedCountsDepthPerInsert) {
  const PointSet initial = anchored_points(10, 4, 25);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();
  EXPECT_EQ(dynamic->cells_recomputed(), 0u);  // creation is not an update

  const std::vector<double> p = {3.0, 4.0, 5.0, 6.0};
  ASSERT_TRUE(dynamic->insert(p).ok());
  EXPECT_EQ(dynamic->cells_recomputed(), dynamic->levels() + 1);
  ASSERT_TRUE(dynamic->erase(0).ok());  // erases drop a column, no recompute
  EXPECT_EQ(dynamic->cells_recomputed(), dynamic->levels() + 1);
}

TEST(DynamicEmbedder, DistortionEnvelopeHoldsOnDynamicTrees) {
  const std::size_t dim = 5;
  const PointSet initial = anchored_points(30, dim, 29);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();
  const PointSet extra = generate_uniform_cube(30, dim, kBox, 30);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(dynamic->insert(extra[i]).ok());
  }
  for (std::uint64_t id : {3ull, 9ull, 14ull}) {
    ASSERT_TRUE(dynamic->erase(id).ok());
  }
  auto materialized = dynamic->materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().to_string();

  // Domination (Lemma 2) must survive dynamization: tree distances over
  // the *embedded* coordinates dominate the embedded metric.
  const DistortionStats stats =
      measure_distortion(materialized->tree, materialized->embedded_points,
                         /*max_pairs=*/2000, /*seed=*/5);
  EXPECT_GE(stats.min_ratio, 1.0);
  EXPECT_GT(stats.pairs, 0u);
}

// ------------------------------------------------------- ensemble + epochs

TEST(DynamicEnsemble, MatchesStaticEnsembleAtOneAndEightThreads) {
  const std::size_t dim = 5;
  const PointSet initial = anchored_points(30, dim, 33);
  const PointSet extra = generate_uniform_cube(20, dim, kBox, 34);

  for (const std::size_t threads : {1u, 8u}) {
    DynamicEnsemble::Options options;
    options.trees = 3;
    options.threads = threads;
    options.member = base_options();
    auto ensemble = DynamicEnsemble::create(initial, options);
    ASSERT_TRUE(ensemble.ok()) << ensemble.status().to_string();

    PointSet final_points = initial;
    for (std::size_t i = 0; i < extra.size(); ++i) {
      ASSERT_TRUE((*ensemble)->insert(extra[i]).ok());
      final_points.push_back(extra[i]);
    }
    auto epoch = (*ensemble)->publish();
    ASSERT_TRUE(epoch.ok()) << epoch.status().to_string();

    // Same member seeds, same final set -> byte-identical members.
    EmbedOptions static_options =
        (*ensemble)->member(0).static_equivalent_options();
    static_options.seed = options.member.seed;  // root, not member-0, seed
    auto statically = EmbeddingEnsemble::build(final_points, static_options,
                                               options.trees, threads);
    ASSERT_TRUE(statically.ok()) << statically.status().to_string();
    for (std::size_t t = 0; t < options.trees; ++t) {
      EXPECT_EQ(hst_to_bytes((*epoch)->ensemble->member(t).tree),
                hst_to_bytes(statically->member(t).tree))
          << "member " << t << " threads " << threads;
    }
  }
}

TEST(DynamicEnsemble, PublishSwapsImmutableEpochs) {
  const PointSet initial = anchored_points(12, 4, 37);
  DynamicEnsemble::Options options;
  options.trees = 2;
  options.member = base_options();
  auto ensemble = DynamicEnsemble::create(initial, options);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status().to_string();

  const auto first = (*ensemble)->current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->num_points(), initial.size());

  // Updates are invisible until publish(): the old epoch still serves.
  const std::vector<double> p = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE((*ensemble)->insert(p).ok());
  EXPECT_EQ((*ensemble)->current()->num_points(), initial.size());

  auto second = (*ensemble)->publish();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->version, 2u);
  EXPECT_EQ((*second)->num_points(), initial.size() + 1);
  // The superseded epoch is untouched — readers holding it are safe.
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->num_points(), initial.size());

  const DynStats stats = (*ensemble)->stats();
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.epochs_published, 2u);
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_GT(stats.nodes_reembedded, 0u);
}

TEST(DynamicEnsemble, InsertRollsBackAllMembersOnFailure) {
  const PointSet initial = anchored_points(10, 3, 41);
  DynamicEnsemble::Options options;
  options.trees = 2;
  options.member = base_options();
  auto ensemble = DynamicEnsemble::create(initial, options);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status().to_string();

  const std::vector<double> wrong_dim = {1.0, 2.0};
  EXPECT_FALSE((*ensemble)->insert(wrong_dim).ok());
  EXPECT_EQ((*ensemble)->size(), initial.size());
  for (std::size_t t = 0; t < options.trees; ++t) {
    EXPECT_EQ((*ensemble)->member(t).size(), initial.size());
  }
}

TEST(DynamicEnsemble, ReadersNeverBlockDuringConcurrentPublish) {
  // The TSan target: reader threads hammer epoch snapshots (atomic
  // shared_ptr loads + tree queries) while the writer thread applies
  // updates and republishes. Readers must only ever observe complete,
  // immutable epochs.
  const std::size_t dim = 4;
  const PointSet initial = anchored_points(20, dim, 45);
  DynamicEnsemble::Options options;
  options.trees = 2;
  options.threads = 1;  // writer stays on its own thread
  options.member = base_options();
  auto ensemble = DynamicEnsemble::create(initial, options);
  ASSERT_TRUE(ensemble.ok()) << ensemble.status().to_string();
  DynamicEnsemble* dyn = ensemble->get();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([dyn, &stop, &reads] {
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto epoch = dyn->current();
        ASSERT_NE(epoch, nullptr);
        ASSERT_GE(epoch->version, last_version);  // versions are monotonic
        last_version = epoch->version;
        ASSERT_EQ(epoch->point_ids.size(), epoch->num_points());
        const double d = epoch->ensemble->min_distance(0, 1);
        ASSERT_GT(d, 0.0);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const PointSet extra = generate_uniform_cube(16, dim, kBox, 46);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(dyn->insert(extra[i]).ok());
    if (i % 2 == 1) {
      ASSERT_TRUE(dyn->erase(dyn->current()->point_ids[2 + i % 8]).ok());
    }
    ASSERT_TRUE(dyn->publish().ok());
    std::this_thread::yield();  // give readers a slice on small machines
  }
  // Make sure the readers actually observed epochs before stopping (on a
  // single-core runner the writer can finish before they are scheduled).
  while (reads.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(dyn->current()->version, 1u + extra.size());
}

// ------------------------------------------------------------ persistence

TEST(DynamicPersistence, EmbeddingRoundTripKeepsStableIds) {
  const PointSet initial = anchored_points(12, 4, 49);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();
  const std::vector<double> p = {2.0, 3.0, 4.0, 5.0};
  ASSERT_TRUE(dynamic->insert(p).ok());
  ASSERT_TRUE(dynamic->erase(3).ok());

  auto materialized = dynamic->materialize();
  ASSERT_TRUE(materialized.ok());
  ASSERT_FALSE(materialized->point_ids.empty());

  const Embedding loaded =
      embedding_from_bytes(embedding_to_bytes(*materialized, true));
  EXPECT_EQ(loaded.point_ids, materialized->point_ids);
  EXPECT_EQ(hst_to_bytes(loaded.tree), hst_to_bytes(materialized->tree));
}

TEST(DynamicPersistence, HstFileRoundTripKeepsStableIds) {
  const PointSet initial = anchored_points(10, 3, 53);
  auto dynamic = DynamicEmbedder::create(initial, base_options());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().to_string();
  ASSERT_TRUE(dynamic->erase(4).ok());
  auto materialized = dynamic->materialize();
  ASSERT_TRUE(materialized.ok());

  const std::string path =
      testing::TempDir() + "/dyn_tree_with_ids.mpte";
  save_hst(materialized->tree, materialized->point_ids, path);
  auto file_bytes = read_file_bytes(path);
  ASSERT_TRUE(file_bytes.ok());
  auto payload = unwrap_checksummed(std::move(*file_bytes),
                                    /*allow_legacy=*/true, path);
  ASSERT_TRUE(payload.ok());
  std::vector<std::uint64_t> ids;
  const Hst tree = hst_from_bytes(*payload, &ids);
  EXPECT_EQ(ids, materialized->point_ids);
  EXPECT_EQ(hst_to_bytes(tree), hst_to_bytes(materialized->tree));
}

}  // namespace
}  // namespace mpte::dyn
