#include "mpc/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace mpte::mpc {
namespace {

Cluster make_cluster(std::size_t machines = 5, std::size_t memory = 1 << 16) {
  return Cluster(ClusterConfig{machines, memory, true});
}

TEST(ScatterGather, RoundTripsInOrder) {
  Cluster cluster = make_cluster(4);
  std::vector<std::uint64_t> input(37);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = i * i;
  scatter_vector(cluster, "data", input);
  EXPECT_EQ(gather_vector<std::uint64_t>(cluster, "data"), input);
}

TEST(ScatterGather, BlocksAreBalanced) {
  Cluster cluster = make_cluster(4);
  scatter_vector(cluster, "data", std::vector<std::uint64_t>(10, 1));
  // ceil(10/4) = 3: blocks 3,3,3,1.
  EXPECT_EQ(cluster.store(0).get_vector<std::uint64_t>("data").size(), 3u);
  EXPECT_EQ(cluster.store(3).get_vector<std::uint64_t>("data").size(), 1u);
}

TEST(ScatterGather, EmptyInput) {
  Cluster cluster = make_cluster(3);
  scatter_vector(cluster, "data", std::vector<double>{});
  EXPECT_TRUE(gather_vector<double>(cluster, "data").empty());
}

class BroadcastTest : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t, MachineId>> {};

TEST_P(BroadcastTest, EveryMachineReceivesBlob) {
  const auto [machines, fanout, root] = GetParam();
  Cluster cluster = make_cluster(machines);
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  cluster.store(root).set_blob("b", blob);
  broadcast_blob(cluster, root, "b", fanout);
  for (MachineId id = 0; id < machines; ++id) {
    EXPECT_EQ(cluster.store(id).blob("b"), blob) << "machine " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastTest,
    ::testing::Values(std::make_tuple(1, 2, 0), std::make_tuple(2, 1, 0),
                      std::make_tuple(5, 1, 2), std::make_tuple(8, 2, 7),
                      std::make_tuple(16, 4, 3), std::make_tuple(9, 3, 0)));

TEST(Broadcast, RoundCountIsLogarithmic) {
  Cluster cluster = make_cluster(16);
  cluster.store(0).set_blob("b", std::vector<std::uint8_t>(8));
  broadcast_blob(cluster, 0, "b", 3);
  // holders: 1 -> 4 -> 16: 2 exchange rounds + 1 persist round.
  EXPECT_EQ(cluster.stats().rounds(), 3u);
}

TEST(Broadcast, ZeroFanoutThrows) {
  Cluster cluster = make_cluster(2);
  cluster.store(0).set_blob("b", std::vector<std::uint8_t>(1));
  EXPECT_THROW(broadcast_blob(cluster, 0, "b", 0), MpteError);
}

TEST(ShuffleByKey, GroupsEqualKeysOnOneMachine) {
  Cluster cluster = make_cluster(4);
  std::vector<KV> records;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 200; ++i) {
    records.push_back(KV{rng.uniform_u64(17), i});
  }
  scatter_vector(cluster, "in", records);
  shuffle_kv_by_key(cluster, "in", "out");

  std::map<std::uint64_t, std::size_t> machine_of_key;
  std::size_t total = 0;
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    const auto part = cluster.store(id).get_vector<KV>("out");
    total += part.size();
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end(), kv_less));
    for (const KV& kv : part) {
      const auto [it, inserted] = machine_of_key.emplace(kv.key, id);
      EXPECT_EQ(it->second, id) << "key " << kv.key << " split";
      (void)inserted;
    }
  }
  EXPECT_EQ(total, records.size());
}

TEST(ShuffleByKey, ConsumesInput) {
  Cluster cluster = make_cluster(3);
  scatter_vector(cluster, "in", std::vector<KV>{{1, 2}, {3, 4}});
  shuffle_kv_by_key(cluster, "in", "out");
  for (MachineId id = 0; id < 3; ++id) {
    EXPECT_FALSE(cluster.store(id).contains("in"));
  }
}

TEST(DedupKv, RemovesExactDuplicates) {
  Cluster cluster = make_cluster(4);
  std::vector<KV> records;
  for (int rep = 0; rep < 5; ++rep) {
    for (std::uint64_t k = 0; k < 30; ++k) records.push_back(KV{k, k * 7});
  }
  scatter_vector(cluster, "in", records);
  dedup_kv(cluster, "in", "out");
  auto all = gather_vector<KV>(cluster, "out");
  std::sort(all.begin(), all.end(), kv_less);
  ASSERT_EQ(all.size(), 30u);
  for (std::uint64_t k = 0; k < 30; ++k) {
    EXPECT_EQ(all[k].key, k);
    EXPECT_EQ(all[k].value, k * 7);
  }
}

TEST(DedupKv, KeepsDistinctValuesOfSameKey) {
  Cluster cluster = make_cluster(2);
  scatter_vector(cluster, "in",
                 std::vector<KV>{{1, 10}, {1, 20}, {1, 10}});
  dedup_kv(cluster, "in", "out");
  EXPECT_EQ(gather_vector<KV>(cluster, "out").size(), 2u);
}

TEST(ReduceKvSum, SumsPerKey) {
  Cluster cluster = make_cluster(4);
  std::vector<KV> records;
  for (std::uint64_t k = 0; k < 10; ++k) {
    for (std::uint64_t v = 1; v <= k + 1; ++v) records.push_back(KV{k, v});
  }
  scatter_vector(cluster, "in", records);
  reduce_kv_sum(cluster, "in", "out");
  auto all = gather_vector<KV>(cluster, "out");
  std::sort(all.begin(), all.end(), kv_less);
  ASSERT_EQ(all.size(), 10u);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(all[k].key, k);
    EXPECT_EQ(all[k].value, (k + 1) * (k + 2) / 2);
  }
}

TEST(SumU64, TotalsAcrossMachines) {
  Cluster cluster = make_cluster(6);
  for (MachineId id = 0; id < 6; ++id) {
    cluster.store(id).set_value<std::uint64_t>("x", id * 10);
  }
  sum_u64(cluster, "x", "total", 2);
  EXPECT_EQ(cluster.store(2).get_value<std::uint64_t>("total"), 150u);
}

TEST(SumU64, MissingKeysCountAsZero) {
  Cluster cluster = make_cluster(4);
  cluster.store(1).set_value<std::uint64_t>("x", 7);
  sum_u64(cluster, "x", "total", 0);
  EXPECT_EQ(cluster.store(0).get_value<std::uint64_t>("total"), 7u);
}

TEST(PrefixSum, MatchesSequentialScan) {
  Cluster cluster = make_cluster(4);
  std::vector<std::uint64_t> values(100);
  Rng rng(7);
  for (auto& v : values) v = rng.uniform_u64(1000);
  scatter_vector(cluster, "in", values);
  prefix_sum_u64(cluster, "in", "out");

  const auto result = gather_vector<std::uint64_t>(cluster, "out");
  ASSERT_EQ(result.size(), values.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(result[i], running) << "position " << i;
    running += values[i];
  }
}

TEST(PrefixSum, EmptyAndSingleMachine) {
  Cluster cluster = make_cluster(1);
  scatter_vector(cluster, "in", std::vector<std::uint64_t>{5, 7, 9});
  prefix_sum_u64(cluster, "in", "out");
  EXPECT_EQ(gather_vector<std::uint64_t>(cluster, "out"),
            (std::vector<std::uint64_t>{0, 5, 12}));
}

TEST(PrefixSum, UnevenBlocks) {
  Cluster cluster = make_cluster(8);
  std::vector<std::uint64_t> values(11, 1);  // blocks of 2, last machines 0
  scatter_vector(cluster, "in", values);
  prefix_sum_u64(cluster, "in", "out");
  const auto result = gather_vector<std::uint64_t>(cluster, "out");
  ASSERT_EQ(result.size(), 11u);
  for (std::size_t i = 0; i < 11; ++i) EXPECT_EQ(result[i], i);
}

TEST(PrefixSum, ConstantRounds) {
  for (const std::size_t n : {16u, 4096u}) {
    Cluster cluster = make_cluster(4);
    scatter_vector(cluster, "in", std::vector<std::uint64_t>(n, 2));
    prefix_sum_u64(cluster, "in", "out");
    EXPECT_EQ(cluster.stats().rounds(), 5u) << "n=" << n;
  }
}

TEST(KvLess, TotalOrder) {
  EXPECT_TRUE(kv_less(KV{1, 5}, KV{2, 0}));
  EXPECT_TRUE(kv_less(KV{1, 0}, KV{1, 1}));
  EXPECT_FALSE(kv_less(KV{1, 1}, KV{1, 1}));
}

}  // namespace
}  // namespace mpte::mpc
