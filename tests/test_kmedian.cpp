#include "apps/kmedian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/status.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

Embedding small_embedding(const PointSet& points, std::uint64_t seed) {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Brute-force k-median under the tree's cluster metric d' = 2*down(lca),
/// for validating the DP on tiny instances.
double brute_force_cluster_metric(const Hst& tree, std::size_t k) {
  const std::size_t n = tree.num_points();
  // down[] per node.
  std::vector<double> down(tree.num_nodes(), 0.0);
  for (std::size_t i = tree.num_nodes(); i-- > 1;) {
    const auto parent = static_cast<std::size_t>(tree.node(i).parent);
    down[parent] = std::max(down[parent], down[i] + tree.node(i).edge_weight);
  }
  const auto dist = [&](std::size_t a, std::size_t b) {
    return a == b ? 0.0 : 2.0 * down[tree.lca(a, b)];
  };
  std::vector<std::size_t> combo(k);
  for (std::size_t i = 0; i < k; ++i) combo[i] = i;
  double best = 1e300;
  for (;;) {
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      double nearest = 1e300;
      for (const std::size_t m : combo) nearest = std::min(nearest, dist(p, m));
      total += nearest;
    }
    best = std::min(best, total);
    std::size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (combo[i] != i + n - k) {
        ++combo[i];
        for (std::size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return best;
  }
}

TEST(TreeKMedian, ValidatesK) {
  const PointSet points = generate_uniform_cube(10, 2, 10.0, 1);
  const Embedding embedding = small_embedding(points, 2);
  EXPECT_THROW((void)tree_kmedian_dp(embedding.tree, 0), MpteError);
}

TEST(TreeKMedian, KEqualsNIsFree) {
  const PointSet points = generate_uniform_cube(8, 2, 10.0, 3);
  const Embedding embedding = small_embedding(points, 4);
  const auto result = tree_kmedian_dp(embedding.tree, 8);
  EXPECT_EQ(result.medians.size(), 8u);
  EXPECT_EQ(result.tree_cost, 0.0);
}

TEST(TreeKMedian, KLargerThanNClamped) {
  const PointSet points = generate_uniform_cube(5, 2, 10.0, 5);
  const Embedding embedding = small_embedding(points, 6);
  const auto result = tree_kmedian_dp(embedding.tree, 50);
  EXPECT_EQ(result.medians.size(), 5u);
}

TEST(TreeKMedian, MediansAreDistinctValidPoints) {
  const PointSet points = generate_uniform_cube(30, 3, 10.0, 7);
  const Embedding embedding = small_embedding(points, 8);
  const auto result = tree_kmedian_dp(embedding.tree, 4);
  EXPECT_EQ(result.medians.size(), 4u);
  std::set<std::size_t> unique(result.medians.begin(), result.medians.end());
  EXPECT_EQ(unique.size(), 4u);
  for (const std::size_t m : result.medians) EXPECT_LT(m, 30u);
}

class TreeKMedianOptimality
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(TreeKMedianOptimality, MatchesBruteForceUnderClusterMetric) {
  const auto [n, k] = GetParam();
  const PointSet points = generate_uniform_cube(n, 3, 20.0, 10 + n + k);
  const Embedding embedding = small_embedding(points, 20 + n * k);
  const auto dp = tree_kmedian_dp(embedding.tree, k);
  const double brute = brute_force_cluster_metric(embedding.tree, k);
  EXPECT_NEAR(dp.tree_cost, brute, 1e-9 * (1.0 + brute))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, TreeKMedianOptimality,
    ::testing::Values(std::make_tuple(6, 1), std::make_tuple(6, 2),
                      std::make_tuple(8, 2), std::make_tuple(8, 3),
                      std::make_tuple(10, 2), std::make_tuple(10, 4)));

TEST(TreeKMedian, CostDecreasesInK) {
  const PointSet points = generate_uniform_cube(25, 3, 20.0, 11);
  const Embedding embedding = small_embedding(points, 12);
  double prev = 1e300;
  for (std::size_t k = 1; k <= 6; ++k) {
    const double cost = tree_kmedian_dp(embedding.tree, k).tree_cost;
    EXPECT_LE(cost, prev + 1e-9) << "k=" << k;
    prev = cost;
  }
}

TEST(KMedianCost, EuclideanEvaluation) {
  PointSet points(3, 1, {0.0, 10.0, 11.0});
  EXPECT_NEAR(kmedian_cost(points, {0}), 21.0, 1e-12);
  EXPECT_NEAR(kmedian_cost(points, {0, 2}), 1.0, 1e-12);
  EXPECT_THROW((void)kmedian_cost(points, {}), MpteError);
}

TEST(ExactKMedian, TinyInstance) {
  PointSet points(4, 1, {0.0, 1.0, 10.0, 11.0});
  // k=2: choose one in each pair: cost 2.
  EXPECT_NEAR(exact_kmedian_cost(points, 2), 2.0, 1e-12);
  EXPECT_THROW((void)exact_kmedian_cost(points, 0), MpteError);
  EXPECT_THROW((void)exact_kmedian_cost(points, 5), MpteError);
}

TEST(TreeKMedian, EuclideanQualityWithinDistortionOfOptimal) {
  // The medians chosen on the tree evaluated in Euclidean metric land
  // within a moderate factor of the exhaustive optimum on clustered data.
  const PointSet points = generate_gaussian_clusters(14, 2, 2, 100.0, 1.0, 13);
  const Embedding embedding = small_embedding(points, 14);
  const auto dp = tree_kmedian_dp(embedding.tree, 2);
  const double tree_quality = kmedian_cost(points, dp.medians);
  const double optimal = exact_kmedian_cost(points, 2);
  EXPECT_LT(tree_quality, 30.0 * optimal + 1e-9);
}

}  // namespace
}  // namespace mpte
