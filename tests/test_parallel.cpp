#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/status.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/hst_io.hpp"

namespace mpte {
namespace {

/// Restores the default thread count on scope exit so tests that override
/// it cannot leak into each other.
struct ThreadsGuard {
  ~ThreadsGuard() { par::set_default_threads(0); }
};

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  par::parallel_for(
      5, 5, [&](std::size_t, std::size_t) { ++calls; }, 8);
  par::parallel_for(
      7, 3, [&](std::size_t, std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleItemRunsInline) {
  std::vector<int> hits(1, 0);
  par::parallel_for(
      0, 1,
      [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 1u);
        ++hits[0];
      },
      8);
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10007;  // prime: exercises uneven chunk splits
  for (const std::size_t threads : {1u, 2u, 3u, 8u, 16u}) {
    std::vector<int> visits(n, 0);
    par::parallel_for(
        0, n,
        [&](std::size_t begin, std::size_t end) {
          ASSERT_LE(begin, end);
          for (std::size_t i = begin; i < end; ++i) ++visits[i];
        },
        threads);
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(n))
        << "threads=" << threads;
    EXPECT_EQ(*std::min_element(visits.begin(), visits.end()), 1)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, OffsetRangeSeesCorrectBounds) {
  std::vector<int> visits(100, 0);
  par::parallel_for(
      40, 60,
      [&](std::size_t begin, std::size_t end) {
        ASSERT_GE(begin, 40u);
        ASSERT_LE(end, 60u);
        for (std::size_t i = begin; i < end; ++i) ++visits[i];
      },
      4);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(visits[i], (i >= 40 && i < 60) ? 1 : 0) << "i=" << i;
  }
}

TEST(ParallelForChunked, ChunkRangesPartitionTheRange) {
  const std::size_t n = 97;
  const std::size_t chunks = 8;
  std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks);
  par::parallel_for_chunked(
      0, n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ranges[chunk] = {begin, end};
      },
      4);
  std::size_t expect_begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, expect_begin) << "chunk " << c;
    EXPECT_LT(ranges[c].first, ranges[c].second);
    expect_begin = ranges[c].second;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ParallelForChunked, ChunkCountCappedAtRangeLength) {
  std::vector<int> chunk_seen;
  par::parallel_for_chunked(
      0, 3, 64,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        chunk_seen.push_back(static_cast<int>(chunk));
      },
      1);
  EXPECT_EQ(chunk_seen.size(), 3u);
}

TEST(ParallelFor, ExceptionPropagatesSerial) {
  EXPECT_THROW(par::parallel_for(
                   0, 10,
                   [](std::size_t, std::size_t) {
                     throw std::runtime_error("boom");
                   },
                   1),
               std::runtime_error);
}

TEST(ParallelFor, ExceptionPropagatesThreaded) {
  try {
    par::parallel_for(
        0, 1000,
        [](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            if (i == 617) throw std::runtime_error("worker failure 617");
          }
        },
        8);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failure 617");
  }
  // The pool must remain usable after a failed batch.
  std::atomic<std::size_t> count{0};
  par::parallel_for(
      0, 100, [&](std::size_t b, std::size_t e) { count += e - b; }, 8);
  EXPECT_EQ(count.load(), 100u);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::atomic<std::size_t> inner_total{0};
  par::parallel_for(
      0, 16,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // Inside a worker this must not deadlock; it runs inline.
          par::parallel_for(
              0, 10,
              [&](std::size_t b, std::size_t e) { inner_total += e - b; },
              4);
        }
      },
      4);
  EXPECT_EQ(inner_total.load(), 160u);
}

TEST(ParallelDefaults, SetDefaultThreadsOverrides) {
  ThreadsGuard guard;
  par::set_default_threads(3);
  EXPECT_EQ(par::default_threads(), 3u);
  EXPECT_EQ(par::resolve_threads(0), 3u);
  EXPECT_EQ(par::resolve_threads(5), 5u);
  par::set_default_threads(0);
  EXPECT_GE(par::default_threads(), 1u);
}

TEST(ParallelPool, GrowsOnDemand) {
  auto& pool = par::ThreadPool::global();
  pool.ensure_workers(3);
  EXPECT_GE(pool.workers(), 3u);
  std::atomic<std::size_t> ran{0};
  pool.run(17, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 17u);
}

/// Runs the full MPC pipeline at a given thread count and returns
/// everything observable: serialized tree bytes, per-round byte counters,
/// and the gathered points.
struct PipelineOutput {
  std::vector<std::uint8_t> tree_bytes;
  std::vector<mpc::RoundRecord> rounds;
  std::vector<double> points_raw;
};

PipelineOutput run_pipeline(std::size_t num_threads) {
  mpc::ClusterConfig config;
  config.num_machines = 6;
  config.local_memory_bytes = 1 << 22;
  config.enforce_limits = true;
  config.num_threads = num_threads;
  mpc::Cluster cluster(config);

  const PointSet points = generate_uniform_cube(120, 6, 25.0, 42);
  MpcEmbedOptions options;
  options.seed = 17;
  options.num_buckets = 2;
  options.delta = 512;
  options.use_fjlt = false;
  const auto result = mpc_embed(cluster, points, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();

  PipelineOutput out;
  out.tree_bytes = hst_to_bytes(result->tree);
  out.rounds = cluster.stats().records();
  out.points_raw = result->embedded_points.raw();
  return out;
}

TEST(ParallelDeterminism, EmbedMpcIdenticalAcrossThreadCounts) {
  const PipelineOutput serial = run_pipeline(1);
  const PipelineOutput threaded = run_pipeline(8);

  // Byte-identical tree.
  EXPECT_EQ(serial.tree_bytes, threaded.tree_bytes);
  // Identical gathered points.
  EXPECT_EQ(serial.points_raw, threaded.points_raw);
  // Identical round structure and byte counters: threading must not change
  // what was sent, received, or resident anywhere.
  ASSERT_EQ(serial.rounds.size(), threaded.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    const auto& a = serial.rounds[r];
    const auto& b = threaded.rounds[r];
    EXPECT_EQ(a.label, b.label) << "round " << r;
    EXPECT_EQ(a.max_sent_bytes, b.max_sent_bytes) << "round " << r;
    EXPECT_EQ(a.max_recv_bytes, b.max_recv_bytes) << "round " << r;
    EXPECT_EQ(a.total_message_bytes, b.total_message_bytes) << "round " << r;
    EXPECT_EQ(a.max_resident_bytes, b.max_resident_bytes) << "round " << r;
    EXPECT_EQ(a.total_resident_bytes, b.total_resident_bytes)
        << "round " << r;
  }
}

TEST(ParallelDeterminism, StepExceptionPropagatesFromThreadedRound) {
  mpc::ClusterConfig config;
  config.num_machines = 8;
  config.num_threads = 4;
  mpc::Cluster cluster(config);
  EXPECT_THROW(cluster.run_round([](mpc::MachineContext& ctx) {
    if (ctx.id() == 3) throw MpteError("machine 3 step failure");
  }),
               MpteError);
}

}  // namespace
}  // namespace mpte
