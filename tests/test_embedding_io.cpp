#include "core/embedding_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "geometry/generators.hpp"

namespace mpte {
namespace {

Embedding sample_embedding(std::uint64_t seed = 3) {
  const PointSet points = generate_uniform_cube(50, 4, 30.0, seed);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(EmbeddingIo, RoundTripWithPoints) {
  const Embedding original = sample_embedding();
  const Embedding restored =
      embedding_from_bytes(embedding_to_bytes(original, true));
  EXPECT_EQ(restored.scale_to_input, original.scale_to_input);
  EXPECT_EQ(restored.delta_used, original.delta_used);
  EXPECT_EQ(restored.buckets_used, original.buckets_used);
  EXPECT_EQ(restored.grids_used, original.grids_used);
  EXPECT_EQ(restored.dim_used, original.dim_used);
  EXPECT_EQ(restored.fjlt_applied, original.fjlt_applied);
  EXPECT_EQ(restored.retries_used, original.retries_used);
  EXPECT_EQ(restored.embedded_points.raw(),
            original.embedded_points.raw());
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = i + 1; j < 50; ++j) {
      EXPECT_EQ(restored.distance(i, j), original.distance(i, j));
    }
  }
}

TEST(EmbeddingIo, RoundTripWithoutPointsIsSmaller) {
  const Embedding original = sample_embedding(5);
  const auto with_points = embedding_to_bytes(original, true);
  const auto without = embedding_to_bytes(original, false);
  EXPECT_LT(without.size(), with_points.size());
  const Embedding restored = embedding_from_bytes(without);
  EXPECT_TRUE(restored.embedded_points.empty());
  // Tree-metric queries still work.
  EXPECT_EQ(restored.distance(0, 1), original.distance(0, 1));
}

TEST(EmbeddingIo, RejectsCorruptHeader) {
  auto bytes = embedding_to_bytes(sample_embedding(7));
  bytes[0] ^= 0x01;
  EXPECT_THROW((void)embedding_from_bytes(bytes), MpteError);
}

TEST(EmbeddingIo, RejectsTruncation) {
  auto bytes = embedding_to_bytes(sample_embedding(9));
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW((void)embedding_from_bytes(bytes), MpteError);
}

TEST(EmbeddingIo, FileRoundTrip) {
  const Embedding original = sample_embedding(11);
  const std::string path = "/tmp/mpte_embedding_io_test.bin";
  save_embedding(original, path);
  const Embedding restored = load_embedding(path);
  EXPECT_EQ(restored.distance(3, 17), original.distance(3, 17));
  std::remove(path.c_str());
  EXPECT_THROW((void)load_embedding(path), MpteError);
}

TEST(EmbeddingIo, RejectsOnDiskCorruption) {
  const Embedding original = sample_embedding(13);
  const std::string path = "/tmp/mpte_embedding_io_corrupt.bin";
  save_embedding(original, path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(32);
    const char byte = static_cast<char>(f.get());
    f.seekp(32);
    f.put(static_cast<char>(byte ^ 0x55));
  }
  const auto result = try_load_embedding(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().to_string().find("checksum"),
            std::string::npos);
  EXPECT_THROW((void)load_embedding(path), MpteError);
  std::remove(path.c_str());
}

TEST(EmbeddingIo, TryLoadReportsMissingFileAsUnavailable) {
  const auto result = try_load_embedding("/nonexistent/dir/e.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(EmbeddingIo, PointIdsRoundTrip) {
  // Dynamic materializations carry stable external ids; the version-2
  // envelope must preserve them bit-for-bit.
  Embedding original = sample_embedding(17);
  for (std::size_t i = 0; i < original.tree.num_points(); ++i) {
    original.point_ids.push_back(3 * static_cast<std::uint64_t>(i) + 11);
  }
  const Embedding restored =
      embedding_from_bytes(embedding_to_bytes(original, false));
  EXPECT_EQ(restored.point_ids, original.point_ids);
}

TEST(EmbeddingIo, StaticEmbeddingsKeepEmptyPointIds) {
  // embed() leaves point_ids empty (dense identity is implicit); a round
  // trip must not invent ids.
  const Embedding restored =
      embedding_from_bytes(embedding_to_bytes(sample_embedding(19), false));
  EXPECT_TRUE(restored.point_ids.empty());
}

TEST(EmbeddingIo, RejectsPointIdCountMismatch) {
  Embedding original = sample_embedding(21);
  original.point_ids = {1, 2, 3};  // != num_points
  EXPECT_THROW(
      (void)embedding_from_bytes(embedding_to_bytes(original, false)),
      MpteError);
}

}  // namespace
}  // namespace mpte
