#include "partition/sphere_caps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"

namespace mpte {
namespace {

TEST(SphereSampling, PointsLieOnSphere) {
  Rng rng(1);
  for (const std::size_t d : {1u, 2u, 3u, 16u, 100u}) {
    const auto v = sample_unit_sphere(rng, d);
    ASSERT_EQ(v.size(), d);
    double norm_sq = 0.0;
    for (const double x : v) norm_sq += x * x;
    EXPECT_NEAR(norm_sq, 1.0, 1e-12) << "d=" << d;
  }
  EXPECT_THROW((void)sample_unit_sphere(rng, 0), MpteError);
}

TEST(SphereSampling, CoordinateIsUnbiased) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += sample_unit_sphere(rng, 5)[0];
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(BallSampling, PointsLieInBall) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto v = sample_unit_ball(rng, 4);
    double norm_sq = 0.0;
    for (const double x : v) norm_sq += x * x;
    EXPECT_LE(norm_sq, 1.0 + 1e-12);
  }
}

TEST(BallSampling, RadiusDistributionIsVolumetric) {
  // Pr[|x| <= r] = r^d: the median radius in d dims is 2^{-1/d}.
  Rng rng(4);
  const std::size_t d = 6;
  std::vector<double> radii;
  for (int i = 0; i < 8000; ++i) {
    const auto v = sample_unit_ball(rng, d);
    double norm_sq = 0.0;
    for (const double x : v) norm_sq += x * x;
    radii.push_back(std::sqrt(norm_sq));
  }
  std::nth_element(radii.begin(), radii.begin() + radii.size() / 2,
                   radii.end());
  EXPECT_NEAR(radii[radii.size() / 2],
              std::pow(0.5, 1.0 / static_cast<double>(d)), 0.01);
}

TEST(EquatorBand, TwoDimensionalClosedForm) {
  // On the circle, Pr[|x_1| <= t] = 2*asin(t)/pi.
  const double t = 0.3;
  const double estimate = equator_band_probability(2, t, 40000, 5, true);
  EXPECT_NEAR(estimate, 2.0 * std::asin(t) / std::numbers::pi, 0.01);
}

TEST(EquatorBand, Lemma4BoundHoldsAcrossDimensions) {
  // Pr[|u_1| <= t] <= C * sqrt(d) * t with a modest universal C.
  for (const std::size_t d : {2u, 4u, 8u, 32u, 128u}) {
    for (const double t : {0.02, 0.05, 0.1}) {
      const double p = equator_band_probability(d, t, 20000, 7 + d, true);
      EXPECT_LE(p, 1.2 * lemma4_bound(d, t) + 0.02)
          << "d=" << d << " t=" << t;
    }
  }
}

TEST(EquatorBand, Lemma5BallVersionHolds) {
  for (const std::size_t d : {2u, 8u, 64u}) {
    const double t = 0.05;
    const double p = equator_band_probability(d, t, 20000, 11 + d, false);
    EXPECT_LE(p, 1.2 * lemma4_bound(d, t) + 0.02) << "d=" << d;
  }
}

TEST(EquatorBand, ScalesLinearlyInBand) {
  // Doubling the band roughly doubles the probability (small-band regime).
  const std::size_t d = 16;
  const double p1 = equator_band_probability(d, 0.02, 60000, 13, true);
  const double p2 = equator_band_probability(d, 0.04, 60000, 13, true);
  EXPECT_NEAR(p2 / p1, 2.0, 0.35);
}

TEST(EquatorBand, SqrtDScaling) {
  // At fixed band, probability grows like sqrt(d): quadrupling d should
  // roughly double it (while both stay small).
  const double t = 0.02;
  const double p4 = equator_band_probability(4, t, 60000, 17, true);
  const double p64 = equator_band_probability(64, t, 60000, 17, true);
  EXPECT_NEAR(p64 / p4, 4.0, 1.5);  // sqrt(64/4) = 4
}

}  // namespace
}  // namespace mpte
