#include "apps/mpc_apps.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/densest_ball.hpp"
#include "apps/emd.hpp"
#include "apps/mst.hpp"
#include "apps/union_find.hpp"
#include "common/rng.hpp"
#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"

namespace mpte {
namespace {

using mpc::Cluster;
using mpc::ClusterConfig;

Cluster big_cluster(std::size_t machines = 5) {
  return Cluster(ClusterConfig{machines, 1 << 22, true});
}

MpcEmbedOptions base_options(std::uint64_t seed) {
  MpcEmbedOptions options;
  options.seed = seed;
  options.use_fjlt = false;
  options.delta = 256;
  options.num_buckets = 2;
  return options;
}

/// The sequential hierarchy matching what the MPC pipeline computes for
/// `options` (first attempt's seed).
Hierarchy reference_hierarchy(const PointSet& points,
                              const MpcEmbedOptions& options) {
  const Quantized q = quantize_to_grid(points, options.delta);
  HybridOptions hybrid;
  hybrid.num_buckets = options.num_buckets;
  hybrid.delta = options.delta;
  hybrid.seed = hash_combine(mix64(options.seed), 0);  // attempt 0
  auto result = build_hybrid_hierarchy(q.points, hybrid);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(MpcTreeEmd, ValidatesInputs) {
  Cluster cluster = big_cluster();
  const PointSet a = generate_uniform_cube(4, 2, 10.0, 1);
  const PointSet b = generate_uniform_cube(5, 2, 10.0, 2);
  EXPECT_FALSE(mpc_tree_emd(cluster, a, b, base_options(1)).ok());
  const PointSet c = generate_uniform_cube(4, 3, 10.0, 3);
  EXPECT_FALSE(mpc_tree_emd(cluster, a, c, base_options(1)).ok());
}

TEST(MpcTreeEmd, MatchesSequentialHierarchyEmd) {
  const PointSet a = generate_uniform_cube(20, 3, 30.0, 5);
  const PointSet b = generate_uniform_cube(20, 3, 30.0, 6);
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);

  const MpcEmbedOptions options = base_options(7);
  Cluster cluster = big_cluster();
  const auto mpc_result = mpc_tree_emd(cluster, a, b, options);
  ASSERT_TRUE(mpc_result.ok()) << mpc_result.status().to_string();

  const Hierarchy hierarchy = reference_hierarchy(all, options);
  std::vector<int> side(40);
  for (std::size_t i = 0; i < 40; ++i) side[i] = i < 20 ? 1 : -1;
  const Quantized q = quantize_to_grid(all, options.delta);
  const double expected = hierarchy_emd(hierarchy, side) * q.scale_back;

  EXPECT_NEAR(mpc_result->emd, expected, 1e-9 * (1.0 + expected));
}

TEST(MpcTreeEmd, DominatesExactEmd) {
  const PointSet a = generate_uniform_cube(12, 3, 30.0, 9);
  const PointSet b = generate_uniform_cube(12, 3, 30.0, 10);
  Cluster cluster = big_cluster();
  const auto result = mpc_tree_emd(cluster, a, b, base_options(11));
  ASSERT_TRUE(result.ok());
  // Tree metric dominates; quantization can nudge by ~eps.
  EXPECT_GE(result->emd, exact_emd(a, b) * 0.9);
}

TEST(MpcTreeEmd, ZeroForIdenticalSides) {
  const PointSet a = generate_uniform_cube(10, 2, 20.0, 13);
  Cluster cluster = big_cluster();
  const auto result = mpc_tree_emd(cluster, a, a, base_options(15));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->emd, 0.0, 1e-9);
}

TEST(MpcTreeEmd, ConstantRounds) {
  std::size_t rounds_small = 0, rounds_large = 0;
  for (const std::size_t half : {16u, 64u}) {
    const PointSet a = generate_uniform_cube(half, 3, 30.0, 17);
    const PointSet b = generate_uniform_cube(half, 3, 30.0, 18);
    Cluster cluster = big_cluster();
    const auto result = mpc_tree_emd(cluster, a, b, base_options(19));
    ASSERT_TRUE(result.ok());
    (half == 16 ? rounds_small : rounds_large) = result->rounds_used;
  }
  EXPECT_EQ(rounds_small, rounds_large);
}

TEST(MpcTreeEmdWeighted, ReducesToUnweightedForUnitMasses) {
  const PointSet a = generate_uniform_cube(12, 3, 30.0, 61);
  const PointSet b = generate_uniform_cube(12, 3, 30.0, 62);
  const std::vector<std::int64_t> unit(12, 1);
  Cluster c1 = big_cluster();
  Cluster c2 = big_cluster();
  const auto weighted =
      mpc_tree_emd_weighted(c1, a, b, unit, unit, base_options(63));
  const auto plain = mpc_tree_emd(c2, a, b, base_options(63));
  ASSERT_TRUE(weighted.ok() && plain.ok());
  EXPECT_NEAR(weighted->emd, plain->emd, 1e-9 * (1.0 + plain->emd));
}

TEST(MpcTreeEmdWeighted, MatchesSequentialWeightedHierarchyEmd) {
  const PointSet a = generate_uniform_cube(8, 3, 30.0, 64);
  const PointSet b = generate_uniform_cube(6, 3, 30.0, 65);
  const std::vector<std::int64_t> mass_a{3, 1, 2, 1, 4, 1, 2, 1};
  const std::vector<std::int64_t> mass_b{5, 2, 1, 3, 2, 2};
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);

  const MpcEmbedOptions options = base_options(66);
  Cluster cluster = big_cluster();
  const auto mpc_result =
      mpc_tree_emd_weighted(cluster, a, b, mass_a, mass_b, options);
  ASSERT_TRUE(mpc_result.ok()) << mpc_result.status().to_string();

  // Sequential reference: weighted imbalance over the same hierarchy.
  const Hierarchy hierarchy = reference_hierarchy(all, options);
  const Quantized q = quantize_to_grid(all, options.delta);
  double expected = 0.0;
  for (std::size_t level = 1; level < hierarchy.levels(); ++level) {
    std::unordered_map<std::uint64_t, std::int64_t> imbalance;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const std::int64_t m = i < 8 ? mass_a[i] : -mass_b[i - 8];
      imbalance[hierarchy.cluster_of_point[level][i]] += m;
    }
    for (const auto& [id, im] : imbalance) {
      expected += hierarchy.edge_weight[level] *
                  static_cast<double>(std::llabs(im));
    }
  }
  expected *= q.scale_back;
  EXPECT_NEAR(mpc_result->emd, expected, 1e-9 * (1.0 + expected));
}

TEST(MpcTreeEmdWeighted, Validation) {
  Cluster cluster = big_cluster();
  const PointSet a = generate_uniform_cube(3, 2, 10.0, 67);
  const PointSet b = generate_uniform_cube(3, 2, 10.0, 68);
  EXPECT_FALSE(mpc_tree_emd_weighted(cluster, a, b, {1, 1}, {1, 1, 0},
                                     base_options(69))
                   .ok());
  EXPECT_FALSE(mpc_tree_emd_weighted(cluster, a, b, {1, 1, 1}, {1, 1, 2},
                                     base_options(69))
                   .ok());
  EXPECT_FALSE(mpc_tree_emd_weighted(cluster, a, b, {1, -1, 1}, {1, 0, 0},
                                     base_options(69))
                   .ok());
}

TEST(MpcDensestBall, MatchesSequentialHierarchyVersion) {
  const PointSet points =
      generate_gaussian_clusters(60, 3, 3, 200.0, 1.5, 21);
  const MpcEmbedOptions options = base_options(23);
  const double max_diameter = 50.0;

  Cluster cluster = big_cluster();
  const auto mpc_result =
      mpc_densest_ball(cluster, points, max_diameter, options);
  ASSERT_TRUE(mpc_result.ok()) << mpc_result.status().to_string();

  const Hierarchy hierarchy = reference_hierarchy(points, options);
  const Quantized q = quantize_to_grid(points, options.delta);
  const auto expected =
      hierarchy_densest_ball(hierarchy, max_diameter / q.scale_back);

  EXPECT_EQ(mpc_result->count, expected.count);
  EXPECT_NEAR(mpc_result->diameter, expected.diameter * q.scale_back,
              1e-9 * (1.0 + mpc_result->diameter));
}

TEST(MpcDensestBall, NegativeDiameterRejected) {
  Cluster cluster = big_cluster();
  const PointSet points = generate_uniform_cube(10, 2, 10.0, 25);
  EXPECT_FALSE(
      mpc_densest_ball(cluster, points, -1.0, base_options(27)).ok());
}

TEST(MpcDensestBall, HugeDiameterCapturesEverything) {
  const PointSet points = generate_uniform_cube(40, 3, 20.0, 29);
  Cluster cluster = big_cluster();
  const auto result =
      mpc_densest_ball(cluster, points, 1e9, base_options(31));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 40u);
}

TEST(MpcDensestBall, TinyDiameterGivesSingleton) {
  const PointSet points = generate_uniform_cube(40, 3, 20.0, 33);
  Cluster cluster = big_cluster();
  const auto result =
      mpc_densest_ball(cluster, points, 0.0, base_options(35));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 1u);
  EXPECT_EQ(result->diameter, 0.0);
}

TEST(MpcTreeMst, ProducesSpanningTree) {
  const PointSet points = generate_uniform_cube(50, 3, 30.0, 37);
  Cluster cluster = big_cluster();
  const auto result = mpc_tree_mst(cluster, points, base_options(39));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result->edges.size(), points.size() - 1);
  UnionFind uf(points.size());
  for (const MstEdge& e : result->edges) {
    EXPECT_TRUE(uf.unite(e.u, e.v)) << "cycle at " << e.u << "-" << e.v;
  }
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(MpcTreeMst, CostDominatesExactMst) {
  const PointSet points = generate_uniform_cube(60, 3, 30.0, 41);
  Cluster cluster = big_cluster();
  const auto result = mpc_tree_mst(cluster, points, base_options(43));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_length,
            exact_mst(points).total_length - 1e-9);
  // And within a sane factor on uniform data.
  EXPECT_LT(result->total_length, 20.0 * exact_mst(points).total_length);
}

TEST(MpcTreeMst, ConstantRounds) {
  std::size_t rounds_small = 0, rounds_large = 0;
  for (const std::size_t n : {24u, 96u}) {
    const PointSet points = generate_uniform_cube(n, 3, 30.0, 45);
    Cluster cluster = big_cluster();
    const auto result = mpc_tree_mst(cluster, points, base_options(47));
    ASSERT_TRUE(result.ok());
    (n == 24 ? rounds_small : rounds_large) = result->rounds_used;
  }
  EXPECT_EQ(rounds_small, rounds_large);
}

TEST(MpcTreeMst, ClusteredDataSingleBridge) {
  const PointSet points = generate_two_blobs(40, 3, 2000.0, 1.0, 49);
  Cluster cluster = big_cluster();
  MpcEmbedOptions options = base_options(51);
  options.delta = 1 << 14;  // resolve the tight blobs
  const auto result = mpc_tree_mst(cluster, points, options);
  ASSERT_TRUE(result.ok());
  std::size_t long_edges = 0;
  for (const MstEdge& e : result->edges) {
    if (e.length > 1000.0) ++long_edges;
  }
  EXPECT_EQ(long_edges, 1u);
}

TEST(HierarchyEmd, ValidatesSides) {
  const PointSet points = generate_uniform_cube(10, 2, 20.0, 53);
  const Hierarchy hierarchy =
      reference_hierarchy(points, base_options(55));
  EXPECT_THROW((void)hierarchy_emd(hierarchy, std::vector<int>(3, 0)),
               MpteError);
  EXPECT_THROW((void)hierarchy_emd(hierarchy, std::vector<int>(10, 1)),
               MpteError);
}

TEST(HierarchyDensestBall, MonotoneInDiameter) {
  const PointSet points =
      generate_gaussian_clusters(50, 3, 4, 100.0, 1.0, 57);
  const Hierarchy hierarchy =
      reference_hierarchy(points, base_options(59));
  std::size_t prev = 0;
  for (const double d : {0.0, 5.0, 20.0, 100.0, 1e6}) {
    const auto result = hierarchy_densest_ball(hierarchy, d);
    EXPECT_GE(result.count, std::max<std::size_t>(prev, 1));
    EXPECT_LE(result.diameter, d);
    prev = result.count;
  }
}

}  // namespace
}  // namespace mpte
