#include "partition/ball_partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/status.hpp"
#include "geometry/generators.hpp"
#include "partition/coverage.hpp"

namespace mpte {
namespace {

TEST(BallGrids, ValidatesArguments) {
  EXPECT_THROW(BallGrids(0, 1.0, 1, 1), MpteError);
  EXPECT_THROW(BallGrids(2, 0.0, 1, 1), MpteError);
  EXPECT_THROW(BallGrids(2, 1.0, 0, 1), MpteError);
}

TEST(BallGrids, ShiftsInCellRange) {
  const BallGrids grids(3, 2.5, 50, 7);
  EXPECT_EQ(grids.cell_width(), 10.0);
  for (std::size_t u = 0; u < 50; ++u) {
    for (std::size_t t = 0; t < 3; ++t) {
      const double s = grids.shift(u, t);
      EXPECT_GE(s, 0.0);
      EXPECT_LT(s, 10.0);
      EXPECT_EQ(s, grids.shift(u, t));  // deterministic
    }
  }
}

TEST(BallGrids, DifferentSeedsDifferentShifts) {
  const BallGrids a(2, 1.0, 4, 1);
  const BallGrids b(2, 1.0, 4, 2);
  EXPECT_NE(a.shift(0, 0), b.shift(0, 0));
}

TEST(BallGrids, AssignDimensionMismatchThrows) {
  const BallGrids grids(3, 1.0, 4, 1);
  const std::vector<double> p{1.0, 2.0};
  EXPECT_THROW((void)grids.assign(p), MpteError);
}

TEST(BallGrids, AssignedPointsAreWithinRadiusOfSomeCenter) {
  // Reconstruct the covering ball from the id semantics: re-scan grids and
  // confirm the first covering grid is within radius.
  const BallGrids grids(2, 1.0, 200, 5);
  const PointSet points = generate_uniform_cube(100, 2, 20.0, 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points[i];
    const std::uint64_t id = grids.assign(p);
    if (id == kUncovered) continue;
    bool found = false;
    for (std::size_t u = 0; u < grids.num_grids() && !found; ++u) {
      double dist_sq = 0.0;
      for (std::size_t t = 0; t < 2; ++t) {
        const double s = grids.shift(u, t);
        const double z = std::round((p[t] - s) / grids.cell_width());
        const double diff = p[t] - (z * grids.cell_width() + s);
        dist_sq += diff * diff;
      }
      if (dist_sq <= grids.radius() * grids.radius()) found = true;
    }
    EXPECT_TRUE(found) << "point " << i;
  }
}

TEST(BallPartition, SamePartitionImpliesClose) {
  // Two points sharing a ball are within 2w of each other.
  const double w = 1.5;
  const BallGrids grids(3, w, 500, 11);
  const PointSet points = generate_uniform_cube(200, 3, 10.0, 13);
  const BallPartitionResult result = ball_partition(points, grids);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (result.ball_of_point[i] == kUncovered) continue;
      if (result.ball_of_point[i] == result.ball_of_point[j]) {
        EXPECT_LE(l2_distance(points[i], points[j]), 2.0 * w + 1e-9);
      }
    }
  }
}

TEST(BallPartition, CoversAllWithRecommendedGrids) {
  const std::size_t n = 300, k = 2;
  const std::size_t u = recommended_num_grids(k, n, 1, 1, 1e-6);
  const BallGrids grids(k, 2.0, u, 17);
  const PointSet points = generate_uniform_cube(n, k, 50.0, 19);
  const BallPartitionResult result = ball_partition(points, grids);
  EXPECT_EQ(result.uncovered, 0u);
}

TEST(BallPartition, UncoveredReportedWhenTooFewGrids) {
  // A single grid covers only ~pi/16 of the plane; most of 500 points miss.
  const BallGrids grids(2, 1.0, 1, 23);
  const PointSet points = generate_uniform_cube(500, 2, 100.0, 29);
  const BallPartitionResult result = ball_partition(points, grids);
  EXPECT_GT(result.uncovered, 200u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Uncovered sentinel is consistent with the count.
    if (result.ball_of_point[i] == kUncovered) continue;
  }
}

TEST(BallPartition, CoverRateMatchesGeometry) {
  // Single grid: the covered fraction should approximate p_k = V_k/4^k.
  const std::size_t k = 2;
  const std::size_t n = 4000;
  const BallGrids grids(k, 1.0, 1, 31);
  const PointSet points = generate_uniform_cube(n, k, 64.0, 37);
  const BallPartitionResult result = ball_partition(points, grids);
  const double covered_fraction =
      1.0 - static_cast<double>(result.uncovered) / static_cast<double>(n);
  EXPECT_NEAR(covered_fraction, ball_grid_cover_probability(k), 0.03);
}

TEST(BallPartition, ScanCountGeometric) {
  // Expected grids scanned per point is ~1/p_k (stopping at first cover).
  const std::size_t k = 2, n = 2000;
  const std::size_t u = recommended_num_grids(k, n, 1, 1, 1e-9);
  const BallGrids grids(k, 1.0, u, 41);
  const PointSet points = generate_uniform_cube(n, k, 32.0, 43);
  const BallPartitionResult result = ball_partition(points, grids);
  const double mean_scans = static_cast<double>(result.total_grids_scanned) /
                            static_cast<double>(n);
  const double expected = 1.0 / ball_grid_cover_probability(k);
  EXPECT_NEAR(mean_scans, expected, expected * 0.2);
}

TEST(BallPartition, DeterministicAssignment) {
  const BallGrids grids(3, 1.0, 100, 47);
  const PointSet points = generate_uniform_cube(50, 3, 10.0, 53);
  const auto a = ball_partition(points, grids);
  const auto b = ball_partition(points, grids);
  EXPECT_EQ(a.ball_of_point, b.ball_of_point);
}

TEST(BallPartition, BallsWithinGridDoNotOverlap) {
  // Points covered by the same grid index u but different cells get
  // different ids; verify via a deterministic 1-d configuration where we
  // know the cells: radius 1, cell 4.
  const BallGrids grids(1, 1.0, 1, 59);
  const double s = grids.shift(0, 0);
  // Place two points at consecutive lattice centers.
  PointSet points(2, 1, {s + 0.0, s + 4.0});
  const auto result = ball_partition(points, grids);
  EXPECT_EQ(result.uncovered, 0u);
  EXPECT_NE(result.ball_of_point[0], result.ball_of_point[1]);
}

}  // namespace
}  // namespace mpte
