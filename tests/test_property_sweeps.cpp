// Cross-module property sweeps: the paper's invariants checked over a
// grid of (partition method x workload shape x size x parameters) far
// wider than any single unit test — domination everywhere, laminarity
// everywhere, metric axioms on every produced tree, MPC/sequential
// agreement across cluster shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/embedder.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte {
namespace {

enum class Workload { kUniform, kClusters, kSubspace, kLattice, kBlobs };

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kUniform:
      return "uniform";
    case Workload::kClusters:
      return "clusters";
    case Workload::kSubspace:
      return "subspace";
    case Workload::kLattice:
      return "lattice";
    case Workload::kBlobs:
      return "blobs";
  }
  return "?";
}

PointSet make_workload(Workload w, std::size_t n, std::size_t dim,
                       std::uint64_t seed) {
  switch (w) {
    case Workload::kUniform:
      return generate_uniform_cube(n, dim, 50.0, seed);
    case Workload::kClusters:
      return generate_gaussian_clusters(n, dim, 5, 100.0, 1.0, seed);
    case Workload::kSubspace:
      return generate_subspace(n, dim, std::max<std::size_t>(1, dim / 3),
                               50.0, 0.05, seed);
    case Workload::kLattice:
      return generate_lattice(n, dim, 2.5);
    case Workload::kBlobs:
      return generate_two_blobs(n, dim, 300.0, 1.0, seed);
  }
  return PointSet{};
}

using SweepParam = std::tuple<PartitionMethod, Workload, std::size_t>;

class EmbeddingPropertySweep : public ::testing::TestWithParam<SweepParam> {
 public:
  static std::string Name(
      const ::testing::TestParamInfo<SweepParam>& info) {
    const auto [method, workload, n] = info.param;
    return std::string(to_string(method)) + "_" + workload_name(workload) +
           "_" + std::to_string(n);
  }
};

TEST_P(EmbeddingPropertySweep, TreeIsValidAndDominates) {
  const auto [method, workload, n] = GetParam();
  const PointSet points = make_workload(workload, n, 5, 31 + n);
  EmbedOptions options;
  options.method = method;
  options.use_fjlt = false;
  options.seed = 7 + n;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  // Structural validity.
  EXPECT_TRUE(result->tree.validate().ok());
  EXPECT_EQ(result->tree.num_points(), n);

  // Domination over the embedded coordinates — exact, every sampled pair.
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 1500, 3);
  EXPECT_GE(stats.min_ratio, 1.0);

  // Metric axioms on a sample of triples.
  const Hst& tree = result->tree;
  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const std::size_t a = rng.uniform_u64(n);
    const std::size_t b = rng.uniform_u64(n);
    const std::size_t c = rng.uniform_u64(n);
    EXPECT_NEAR(tree.distance(a, b), tree.distance(b, a), 1e-12);
    EXPECT_LE(tree.distance(a, c),
              tree.distance(a, b) + tree.distance(b, c) + 1e-9);
    EXPECT_EQ(tree.distance(a, a), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmbeddingPropertySweep,
    ::testing::Combine(::testing::Values(PartitionMethod::kGrid,
                                         PartitionMethod::kBall,
                                         PartitionMethod::kHybrid),
                       ::testing::Values(Workload::kUniform,
                                         Workload::kClusters,
                                         Workload::kSubspace,
                                         Workload::kLattice,
                                         Workload::kBlobs),
                       ::testing::Values(24u, 96u)),
    EmbeddingPropertySweep::Name);

class BucketSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BucketSweep, HybridValidForEveryR) {
  const std::uint32_t r = GetParam();
  const PointSet points = generate_uniform_cube(64, 8, 40.0, 41);
  EmbedOptions options;
  options.num_buckets = r;
  options.use_fjlt = false;
  options.seed = 43;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok()) << "r=" << r;
  EXPECT_EQ(result->buckets_used, r);
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 1000, 5);
  EXPECT_GE(stats.min_ratio, 1.0) << "r=" << r;
}

INSTANTIATE_TEST_SUITE_P(AllBucketCounts, BucketSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

class ClusterShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ClusterShapeSweep, MpcMatchesSequentialForEveryShape) {
  const auto [machines, fanout] = GetParam();
  const PointSet points = generate_uniform_cube(40, 4, 30.0, 47);

  EmbedOptions seq;
  seq.num_buckets = 2;
  seq.delta = 128;
  seq.seed = 53;
  seq.use_fjlt = false;
  const auto a = embed(points, seq);
  ASSERT_TRUE(a.ok());

  mpc::Cluster cluster(mpc::ClusterConfig{machines, 1 << 22, true});
  MpcEmbedOptions par;
  par.num_buckets = 2;
  par.delta = 128;
  par.seed = 53;
  par.use_fjlt = false;
  par.broadcast_fanout = fanout;
  const auto b = mpc_embed(cluster, points, par);
  ASSERT_TRUE(b.ok()) << b.status().to_string();

  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = i + 1; j < 40; ++j) {
      EXPECT_DOUBLE_EQ(a->tree.distance(i, j), b->tree.distance(i, j))
          << "machines=" << machines << " fanout=" << fanout;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeSweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(3, 2), std::make_tuple(7, 3),
                      std::make_tuple(16, 4)));

class SeedStabilitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedStabilitySweep, EverySeedProducesAValidDominatingTree) {
  const std::uint64_t seed = GetParam();
  const PointSet points = generate_gaussian_clusters(60, 4, 3, 80.0, 1.5,
                                                     seed * 13 + 1);
  EmbedOptions options;
  options.seed = seed;
  options.use_fjlt = false;
  const auto result = embed(points, options);
  ASSERT_TRUE(result.ok()) << "seed=" << seed;
  EXPECT_TRUE(result->tree.validate().ok());
  const auto stats =
      measure_distortion(result->tree, result->embedded_points, 800, seed);
  EXPECT_GE(stats.min_ratio, 1.0) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStabilitySweep,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mpte
