// Tests for common/net: the EINTR-safe blocking socket helpers under
// every frame and wire byte in serve/ and ipc/. The deadline semantics
// ("whole-operation budget") and the EINTR retry loops are exercised
// directly here — the transports above only see their composed effect.
#include "common/net.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace mpte {
namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int a() const { return fds[0]; }
  int b() const { return fds[1]; }
  void close_a() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(Net, SendAllThenRecvExactRoundTrips) {
  SocketPair pair;
  std::vector<std::uint8_t> sent(4096);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(net::send_all(pair.a(), std::span<const std::uint8_t>(sent))
                  .ok());
  std::vector<std::uint8_t> got(sent.size());
  ASSERT_TRUE(
      net::recv_exact(pair.b(), std::span<std::uint8_t>(got), 1000).ok());
  EXPECT_EQ(got, sent);
}

TEST(Net, RecvExactAssemblesAcrossPartialWrites) {
  SocketPair pair;
  std::vector<std::uint8_t> sent(257);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i);
  }
  // Dribble the payload in four chunks with gaps: each recv returns a
  // short fill, and recv_exact must keep pulling until complete.
  std::thread writer([&] {
    std::size_t offset = 0;
    for (const std::size_t chunk : {1u, 64u, 100u, 92u}) {
      ASSERT_TRUE(net::send_all(pair.a(),
                                std::span<const std::uint8_t>(
                                    sent.data() + offset, chunk))
                      .ok());
      offset += chunk;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::vector<std::uint8_t> got(sent.size());
  EXPECT_TRUE(
      net::recv_exact(pair.b(), std::span<std::uint8_t>(got), 5000).ok());
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(Net, RecvExactDeadlineExpiresWhenPeerStaysSilent) {
  SocketPair pair;
  std::vector<std::uint8_t> buf(16);
  const auto start = std::chrono::steady_clock::now();
  const Status status =
      net::recv_exact(pair.b(), std::span<std::uint8_t>(buf), 100);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed.count(), 90);
}

TEST(Net, RecvExactDeadlineIsWholeOperationNotPerChunk) {
  SocketPair pair;
  // One byte arrives every ~60 ms; a per-chunk budget of 150 ms would
  // pass, but the whole-fill budget of 150 ms must expire mid-assembly.
  std::thread writer([&] {
    for (int i = 0; i < 5; ++i) {
      const std::uint8_t byte = static_cast<std::uint8_t>(i);
      if (!net::send_all(pair.a(), std::span<const std::uint8_t>(&byte, 1))
               .ok()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  });
  std::vector<std::uint8_t> buf(5);
  const Status status =
      net::recv_exact(pair.b(), std::span<std::uint8_t>(buf), 150);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  writer.join();
}

TEST(Net, RecvExactReportsEofAsUnavailable) {
  SocketPair pair;
  const std::uint8_t byte = 42;
  ASSERT_TRUE(
      net::send_all(pair.a(), std::span<const std::uint8_t>(&byte, 1)).ok());
  pair.close_a();  // partial payload, then orderly shutdown
  std::vector<std::uint8_t> buf(8);
  const Status status =
      net::recv_exact(pair.b(), std::span<std::uint8_t>(buf), 1000);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("7B outstanding"), std::string::npos)
      << status.to_string();
}

TEST(Net, WaitReadableTimesOutThenSeesData) {
  SocketPair pair;
  const auto quiet = net::wait_readable(pair.b(), 50);
  ASSERT_TRUE(quiet.ok());
  EXPECT_FALSE(*quiet);

  const std::uint8_t byte = 1;
  ASSERT_TRUE(
      net::send_all(pair.a(), std::span<const std::uint8_t>(&byte, 1)).ok());
  const auto ready = net::wait_readable(pair.b(), 1000);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(*ready);

  // Peer close also reports readable (recv then returns 0 = EOF).
  pair.close_a();
  std::uint8_t drain;
  ASSERT_TRUE(net::recv_some(pair.b(), std::span<std::uint8_t>(&drain, 1))
                  .ok());
  const auto closed = net::wait_readable(pair.b(), 1000);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(*closed);
}

TEST(Net, RecvExactSurvivesEintrFromSignals) {
  // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART, so every delivery
  // interrupts the blocking poll/recv with EINTR instead of auto-resuming.
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  SocketPair pair;
  std::vector<std::uint8_t> sent(64);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::uint8_t>(i + 1);
  }
  const pthread_t reader_thread = ::pthread_self();
  std::thread pinger([&] {
    // Pepper the blocked reader with signals, then deliver the payload.
    for (int i = 0; i < 20; ++i) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(
        net::send_all(pair.a(), std::span<const std::uint8_t>(sent)).ok());
  });
  std::vector<std::uint8_t> got(sent.size());
  const Status status =
      net::recv_exact(pair.b(), std::span<std::uint8_t>(got), 10'000);
  pinger.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);
  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_EQ(got, sent);
}

TEST(Net, SendAllReportsPeerDeathAsStatusNotSigpipe) {
  SocketPair pair;
  pair.close_a();
  // Big enough to outrun any kernel buffer once the reader is gone; the
  // MSG_NOSIGNAL send must fail with a Status, not kill the process.
  std::vector<std::uint8_t> payload(1 << 20, 0xAB);
  const Status status =
      net::send_all(pair.b(), std::span<const std::uint8_t>(payload));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(Net, FinishConnectSucceedsOnListeningSocket) {
  // Loopback listener on an ephemeral port.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // Already connected: finish_connect is a no-op success (SO_ERROR == 0).
  EXPECT_TRUE(net::finish_connect(client).ok());
  ::close(client);
  ::close(listener);
}

TEST(Net, FinishConnectSurfacesConnectionRefused) {
  // Bind-then-close pins down a port with no listener behind it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  ::close(probe);

  // A non-blocking connect puts the attempt in flight (EINPROGRESS) — the
  // same "outcome must be read from SO_ERROR" state an EINTR-interrupted
  // blocking connect leaves behind. finish_connect must surface the
  // refusal as a Status.
  const int client = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  ASSERT_GE(client, 0);
  const int rc =
      ::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    // Extremely unlikely port reuse; nothing to assert against.
    ::close(client);
    GTEST_SKIP() << "port was re-bound between close and connect";
  }
  ASSERT_TRUE(errno == EINPROGRESS || errno == ECONNREFUSED);
  const Status status = net::finish_connect(client);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("connect"), std::string::npos);
  ::close(client);
}

}  // namespace
}  // namespace mpte
