#include "partition/coverage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/status.hpp"

namespace mpte {
namespace {

TEST(Coverage, RecommendedGridsValidation) {
  EXPECT_THROW(recommended_num_grids(0, 10, 1, 1, 0.1), MpteError);
  EXPECT_THROW(recommended_num_grids(2, 10, 1, 1, 0.0), MpteError);
  EXPECT_THROW(recommended_num_grids(2, 10, 1, 1, 1.0), MpteError);
}

TEST(Coverage, OneDimensionalCount) {
  // p_1 = 1/2; need (1/2)^U * events <= delta.
  const std::size_t u = recommended_num_grids(1, 1, 1, 1, 0.5);
  EXPECT_EQ(u, 1u);
  const std::size_t u2 = recommended_num_grids(1, 1, 1, 1, 1.0 / 1024.0);
  EXPECT_EQ(u2, 10u);
}

TEST(Coverage, GrowsWithEvents) {
  const std::size_t base = recommended_num_grids(2, 100, 2, 10, 1e-6);
  EXPECT_GT(recommended_num_grids(2, 10000, 2, 10, 1e-6), base);
  EXPECT_GT(recommended_num_grids(2, 100, 8, 10, 1e-6), base);
  EXPECT_GT(recommended_num_grids(2, 100, 2, 40, 1e-6), base);
  EXPECT_GT(recommended_num_grids(2, 100, 2, 10, 1e-12), base);
}

TEST(Coverage, GrowsExponentiallyWithBucketDim) {
  // U ~ 1/p_k and p_k shrinks like V_k/4^k.
  const std::size_t u2 = recommended_num_grids(2, 100, 1, 10, 1e-6);
  const std::size_t u4 = recommended_num_grids(4, 100, 1, 10, 1e-6);
  const std::size_t u6 = recommended_num_grids(6, 100, 1, 10, 1e-6);
  EXPECT_GT(u4, 3 * u2);
  EXPECT_GT(u6, 3 * u4);
}

TEST(Coverage, UnionBoundGuarantee) {
  // With U = recommended, the failure probability formula stays <= delta.
  for (const std::size_t k : {1u, 2u, 3u, 4u}) {
    const double delta = 1e-4;
    const std::size_t n = 500, r = 4, levels = 20;
    const std::size_t u = recommended_num_grids(k, n, r, levels, delta);
    const double miss_one_event =
        coverage_failure_probability(k, 1, u);  // single point
    EXPECT_LE(miss_one_event * static_cast<double>(n * r * levels),
              delta * 1.001)
        << "k=" << k;
  }
}

TEST(Coverage, FailureProbabilityMonotoneInGrids) {
  double prev = 1.0;
  for (std::size_t u = 1; u <= 512; u *= 2) {
    const double p = coverage_failure_probability(3, 100, u);
    EXPECT_LE(p, prev);
    prev = p;
  }
  // (1 - p_3)^512 * 100 with p_3 ~ 0.065 is astronomically small.
  EXPECT_LT(prev, 1e-10);
}

TEST(Coverage, FailureProbabilityCappedAtOne) {
  EXPECT_EQ(coverage_failure_probability(8, 1 << 20, 1), 1.0);
}

TEST(Coverage, Lemma7BoundSameGrowthFamilyAsExact) {
  // The asymptotic 2^{k log k} form should stay within a few orders of
  // magnitude of the exact union-bound count over small k.
  for (const std::size_t k : {2u, 3u, 4u}) {
    const double lemma = lemma7_grid_bound(k, 4, 20, 1e-6);
    const auto exact =
        static_cast<double>(recommended_num_grids(k, 1000, 4, 20, 1e-6));
    EXPECT_GT(lemma * 1e3, exact) << "k=" << k;
    EXPECT_LT(lemma, exact * 1e3) << "k=" << k;
  }
}

}  // namespace
}  // namespace mpte
