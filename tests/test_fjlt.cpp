#include "transform/fjlt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(FjltConfig, MakeValidatesInputs) {
  EXPECT_THROW(FjltConfig::make(1, 10, 0.25, 1), MpteError);
  EXPECT_THROW(FjltConfig::make(100, 10, 0.0, 1), MpteError);
  EXPECT_THROW(FjltConfig::make(100, 10, 0.5, 1), MpteError);
  EXPECT_THROW(FjltConfig::make(100, 0, 0.25, 1), MpteError);
}

TEST(FjltConfig, PadsToPowerOfTwo) {
  const FjltConfig c = FjltConfig::make(1000, 100, 0.25, 1);
  EXPECT_EQ(c.padded_dim, 128u);
  EXPECT_TRUE(is_power_of_two(c.padded_dim));
  EXPECT_GE(c.padded_dim, c.input_dim);
}

TEST(FjltConfig, SparsityFormula) {
  // q = min(1, 2 log^2 n / d_padded).
  const FjltConfig dense = FjltConfig::make(1000, 8, 0.25, 1);
  EXPECT_EQ(dense.q, 1.0);
  const FjltConfig sparse = FjltConfig::make(1000, 100000, 0.25, 1);
  EXPECT_LT(sparse.q, 0.01);
  EXPECT_GT(sparse.q, 0.0);
}

TEST(FjltConfig, OutputDimMatchesTheorem) {
  // k = ceil(2 log n / xi^2) grows as 1/xi^2 and log n.
  const auto k1 = FjltConfig::make(1000, 100, 0.4, 1).output_dim;
  const auto k2 = FjltConfig::make(1000, 100, 0.2, 1).output_dim;
  EXPECT_NEAR(static_cast<double>(k2) / static_cast<double>(k1), 4.0, 0.2);
}

TEST(FjltEntries, CounterBasedDeterminism) {
  EXPECT_EQ(fjlt_d_sign(5, 17), fjlt_d_sign(5, 17));
  EXPECT_EQ(fjlt_p_entry(5, 0.5, 3, 9), fjlt_p_entry(5, 0.5, 3, 9));
  // Signs are ±1.
  for (std::size_t j = 0; j < 100; ++j) {
    const double s = fjlt_d_sign(1, j);
    EXPECT_TRUE(s == 1.0 || s == -1.0);
  }
}

TEST(FjltEntries, DSignsBalanced) {
  int plus = 0;
  for (std::size_t j = 0; j < 10000; ++j) {
    plus += fjlt_d_sign(123, j) > 0;
  }
  EXPECT_NEAR(plus / 10000.0, 0.5, 0.03);
}

TEST(FjltEntries, PSparsityMatchesQ) {
  const double q = 0.125;
  std::size_t nonzero = 0;
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    if (fjlt_p_entry(7, q, i / 200, i % 200) != 0.0) ++nonzero;
  }
  EXPECT_NEAR(static_cast<double>(nonzero) / trials, q, 0.01);
}

TEST(Fjlt, NonzeroCountNearExpectation) {
  const FjltConfig c = FjltConfig::make(512, 2000, 0.25, 3);
  const Fjlt fjlt(c);
  const double expected =
      c.q * static_cast<double>(c.output_dim * c.padded_dim);
  EXPECT_NEAR(static_cast<double>(fjlt.p_nonzeros()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Fjlt, DeterministicTransform) {
  const FjltConfig c = FjltConfig::make(100, 60, 0.3, 5);
  const PointSet points = generate_uniform_cube(10, 60, 1.0, 2);
  const PointSet a = Fjlt(c).transform(points);
  const PointSet b = Fjlt(c).transform(points);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_EQ(a.dim(), c.output_dim);
}

TEST(Fjlt, NormPreservedInExpectation) {
  // E||phi(x)||^2 = ||x||^2 under the k^{-1/2} normalization (the paper's
  // Section 5 k^{-1} would fail this test by a factor k).
  const PointSet point = generate_uniform_cube(1, 48, 1.0, 9);
  std::vector<double> zero(48, 0.0);
  const double norm_sq = l2_distance_squared(point[0], zero);
  double sum_ratio = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    FjltConfig c = FjltConfig::make(4096, 48, 0.3, 100 + t);
    const auto mapped = Fjlt(c).apply(point[0]);
    double mapped_sq = 0.0;
    for (const double v : mapped) mapped_sq += v * v;
    sum_ratio += mapped_sq / norm_sq;
  }
  EXPECT_NEAR(sum_ratio / trials, 1.0, 0.08);
}

TEST(Fjlt, PairwiseDistancesWithinXi) {
  const std::size_t n = 40;
  const double xi = 0.45;
  const PointSet points =
      generate_gaussian_clusters(n, 120, 4, 10.0, 1.0, 21);
  const FjltConfig c = FjltConfig::make(n, 120, xi, 31);
  const PointSet mapped = Fjlt(c).transform(points);
  std::size_t violations = 0, pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double now = l2_distance(mapped[i], mapped[j]);
      ++pairs;
      if (now < (1 - xi) * orig || now > (1 + xi) * orig) ++violations;
    }
  }
  EXPECT_LE(violations, pairs / 50);
}

TEST(Fjlt, LinearMap) {
  const FjltConfig c = FjltConfig::make(64, 20, 0.3, 7);
  const Fjlt fjlt(c);
  std::vector<double> x(20, 0.0), y(20, 0.0), sum(20, 0.0);
  x[4] = 1.5;
  y[11] = -2.0;
  sum[4] = 1.5;
  sum[11] = -2.0;
  const auto fx = fjlt.apply(x);
  const auto fy = fjlt.apply(y);
  const auto fsum = fjlt.apply(sum);
  for (std::size_t i = 0; i < fsum.size(); ++i) {
    EXPECT_NEAR(fsum[i], fx[i] + fy[i], 1e-10);
  }
}

TEST(Fjlt, HandlesNonPowerOfTwoInput) {
  const FjltConfig c = FjltConfig::make(128, 100, 0.3, 13);
  EXPECT_EQ(c.padded_dim, 128u);
  const PointSet points = generate_uniform_cube(4, 100, 1.0, 17);
  const PointSet mapped = Fjlt(c).transform(points);
  EXPECT_EQ(mapped.dim(), c.output_dim);
  // Finite values.
  for (const double v : mapped.raw()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace mpte
