// Whole-stack system test, driven the way a downstream user would drive
// the library: generate data, write/read CSV, embed, persist, reload, and
// run every application off the reloaded embedding — nothing may depend on
// in-process state that persistence would lose.
#include <gtest/gtest.h>

#include <cstdio>

#include "mpte.hpp"

namespace mpte {
namespace {

TEST(SystemEndToEnd, CsvEmbedPersistQueryApps) {
  const std::string csv_path = "/tmp/mpte_system_test.csv";
  const std::string emb_path = "/tmp/mpte_system_test.emb";

  // 1. Data to disk and back.
  const PointSet original =
      generate_gaussian_clusters(120, 6, 4, 300.0, 2.0, 71);
  write_csv_points_file(original, csv_path);
  const PointSet points = read_csv_points_file(csv_path);
  ASSERT_EQ(points.raw(), original.raw());

  // 2. Embed and persist.
  EmbedOptions options;
  options.seed = 73;
  const auto built = embed(points, options);
  ASSERT_TRUE(built.ok()) << built.status().to_string();
  save_embedding(*built, emb_path);

  // 3. Reload; the tree metric must survive byte-exactly.
  const Embedding embedding = load_embedding(emb_path);
  EXPECT_TRUE(embedding.tree.validate().ok());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(embedding.distance(i, i + 50), built->distance(i, i + 50));
  }

  // 4. Fast distance index agrees with the tree walk.
  const LcaIndex index(embedding.tree);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(index.distance(i, 119 - i),
                embedding.tree.distance(i, 119 - i), 1e-9);
  }

  // 5. Applications off the reloaded embedding.
  const MstResult mst = tree_mst(embedding.tree, points);
  EXPECT_EQ(mst.edges.size(), points.size() - 1);

  const auto kcenters = tree_kcenter(embedding.tree, points, 4);
  EXPECT_LE(kcenters.centers.size(), 4u);
  EXPECT_LT(kcenters.radius, 400.0);

  const auto kmed = tree_kmedian_dp(embedding.tree, 4);
  EXPECT_EQ(kmed.medians.size(), 4u);

  const auto ball = densest_ball_tree(
      embedding.tree, 50.0 / embedding.scale_to_input);
  EXPECT_GE(ball.count, 1u);

  const auto nn = tree_nearest_neighbor(embedding.tree, points, 0, 12);
  EXPECT_NE(nn.neighbor, 0u);

  const double emd = tree_emd_split(embedding.tree, 60);
  EXPECT_GT(emd, 0.0);

  std::remove(csv_path.c_str());
  std::remove(emb_path.c_str());
}

TEST(SystemEndToEnd, MpcPipelineFeedsSameApplications) {
  // The MPC-built tree is a drop-in replacement for the sequential one.
  const PointSet points = generate_uniform_cube(90, 5, 40.0, 77);
  mpc::Cluster cluster(mpc::ClusterConfig{6, 1 << 22, true});
  MpcEmbedOptions options;
  options.seed = 79;
  options.use_fjlt = false;
  const auto result = mpc_embed(cluster, points, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  const MstResult mst = tree_mst(result->tree, points);
  EXPECT_EQ(mst.edges.size(), points.size() - 1);
  EXPECT_GE(mst.total_length, exact_mst(points).total_length - 1e-9);

  const auto nn = tree_nearest_neighbor(result->tree, points, 5, 8);
  EXPECT_NE(nn.neighbor, 5u);

  const LcaIndex index(result->tree);
  EXPECT_NEAR(index.distance(1, 2), result->tree.distance(1, 2), 1e-9);
}

TEST(SystemEndToEnd, UmbrellaHeaderExposesEverything) {
  // Compile-time surface check: the umbrella header must make every
  // public entry point reachable (this test existing proves it compiles).
  const PointSet points = generate_two_blobs(16, 3, 100.0, 1.0, 81);
  const auto ensemble = EmbeddingEnsemble::build(points, EmbedOptions{}, 2);
  ASSERT_TRUE(ensemble.ok());
  EXPECT_LE(ensemble->min_distance(0, 8),
            ensemble->expected_distance(0, 8) + 1e-12);
}

}  // namespace
}  // namespace mpte
