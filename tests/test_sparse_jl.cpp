#include "transform/sparse_jl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/generators.hpp"
#include "transform/dense_jl.hpp"

namespace mpte {
namespace {

TEST(SparseJlSign, DistributionIsOneSixthEachSide) {
  std::size_t plus = 0, minus = 0, zero = 0;
  const std::size_t trials = 60000;
  for (std::size_t i = 0; i < trials; ++i) {
    const int s = sparse_jl_sign(7, i / 300, i % 300);
    plus += s == 1;
    minus += s == -1;
    zero += s == 0;
  }
  EXPECT_NEAR(static_cast<double>(plus) / trials, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(static_cast<double>(minus) / trials, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(static_cast<double>(zero) / trials, 2.0 / 3.0, 0.01);
}

TEST(SparseJlSign, Deterministic) {
  EXPECT_EQ(sparse_jl_sign(1, 2, 3), sparse_jl_sign(1, 2, 3));
}

TEST(SparseJl, ValidatesDimensions) {
  EXPECT_THROW(SparseJl(0, 4, 1), MpteError);
  EXPECT_THROW(SparseJl(4, 0, 1), MpteError);
}

TEST(SparseJl, NonzerosNearOneThird) {
  const SparseJl jl(300, 40, 3);
  const double density = static_cast<double>(jl.nonzeros()) / (300.0 * 40.0);
  EXPECT_NEAR(density, 1.0 / 3.0, 0.02);
}

TEST(SparseJl, NormPreservedInExpectation) {
  const PointSet point = generate_uniform_cube(1, 64, 1.0, 5);
  std::vector<double> zero(64, 0.0);
  const double norm_sq = l2_distance_squared(point[0], zero);
  double sum_ratio = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const SparseJl jl(64, 16, 500 + t);
    const auto mapped = jl.apply(point[0]);
    double mapped_sq = 0.0;
    for (const double v : mapped) mapped_sq += v * v;
    sum_ratio += mapped_sq / norm_sq;
  }
  EXPECT_NEAR(sum_ratio / trials, 1.0, 0.08);
}

TEST(SparseJl, PairwiseDistancesWithinXi) {
  const std::size_t n = 40;
  const double xi = 0.5;
  const PointSet points =
      generate_gaussian_clusters(n, 100, 4, 10.0, 1.0, 7);
  const std::size_t k = DenseJl::recommended_dim(n, xi);
  const SparseJl jl(100, k, 9);
  const PointSet mapped = jl.transform(points);
  std::size_t violations = 0, pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double now = l2_distance(mapped[i], mapped[j]);
      ++pairs;
      if (now < (1 - xi) * orig || now > (1 + xi) * orig) ++violations;
    }
  }
  EXPECT_LE(violations, pairs / 50);
}

TEST(SparseJl, DeterministicTransform) {
  const PointSet points = generate_uniform_cube(8, 50, 1.0, 11);
  const PointSet a = SparseJl(50, 12, 13).transform(points);
  const PointSet b = SparseJl(50, 12, 13).transform(points);
  const PointSet c = SparseJl(50, 12, 14).transform(points);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_NE(a.raw(), c.raw());
}

TEST(SparseJl, LinearMap) {
  const SparseJl jl(20, 6, 15);
  std::vector<double> x(20, 0.0), y(20, 0.0), sum(20, 0.0);
  x[2] = 3.0;
  y[17] = -1.5;
  sum[2] = 3.0;
  sum[17] = -1.5;
  const auto fx = jl.apply(x);
  const auto fy = jl.apply(y);
  const auto fsum = jl.apply(sum);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(fsum[i], fx[i] + fy[i], 1e-12);
  }
}

}  // namespace
}  // namespace mpte
