#include "partition/grid_partition.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(ShiftedGrid, ValidatesArguments) {
  EXPECT_THROW(ShiftedGrid(0, 1.0, 1), MpteError);
  EXPECT_THROW(ShiftedGrid(2, 0.0, 1), MpteError);
}

TEST(ShiftedGrid, ShiftInRangeAndDeterministic) {
  const ShiftedGrid grid(4, 3.0, 9);
  for (std::size_t t = 0; t < 4; ++t) {
    const double s = grid.shift(t);
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 3.0);
    EXPECT_EQ(s, grid.shift(t));
  }
}

TEST(ShiftedGrid, DimensionMismatchThrows) {
  const ShiftedGrid grid(3, 1.0, 1);
  const std::vector<double> p{1.0};
  EXPECT_THROW((void)grid.cell_id(p), MpteError);
}

TEST(ShiftedGrid, SameCellIffSameFlooredCoordinates) {
  const ShiftedGrid grid(2, 5.0, 11);
  const PointSet points = generate_uniform_cube(300, 2, 40.0, 13);
  const auto cells = grid_partition(points, grid);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      bool same_cell = true;
      for (std::size_t t = 0; t < 2; ++t) {
        const double zi = std::floor((points[i][t] - grid.shift(t)) / 5.0);
        const double zj = std::floor((points[j][t] - grid.shift(t)) / 5.0);
        if (zi != zj) same_cell = false;
      }
      EXPECT_EQ(cells[i] == cells[j], same_cell)
          << "pair " << i << "," << j;
    }
  }
}

TEST(ShiftedGrid, SameCellImpliesWithinCellDiagonal) {
  const double w = 2.0;
  const ShiftedGrid grid(3, w, 17);
  const PointSet points = generate_uniform_cube(400, 3, 30.0, 19);
  const auto cells = grid_partition(points, grid);
  const double diagonal = w * std::sqrt(3.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (cells[i] == cells[j]) {
        EXPECT_LE(l2_distance(points[i], points[j]), diagonal + 1e-9);
      }
    }
  }
}

TEST(ShiftedGrid, SeparationProbabilityScalesWithDistanceOverWidth) {
  // For a random shift, a pair at distance D along one axis is cut with
  // probability min(1, D/w) per axis. Check the 1-d case empirically.
  const double w = 10.0;
  const double d = 2.0;
  int cut = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const ShiftedGrid grid(1, w, 1000 + t);
    PointSet points(2, 1, {50.0, 50.0 + d});
    const auto cells = grid_partition(points, grid);
    cut += (cells[0] != cells[1]);
  }
  EXPECT_NEAR(static_cast<double>(cut) / trials, d / w, 0.02);
}

TEST(ShiftedGrid, EveryPointGetsACell) {
  // Grids always cover: no uncovered sentinel concept here; ids exist and
  // identical points share cells.
  const ShiftedGrid grid(5, 1.0, 23);
  PointSet points(2, 5, {1, 2, 3, 4, 5, 1, 2, 3, 4, 5});
  const auto cells = grid_partition(points, grid);
  EXPECT_EQ(cells[0], cells[1]);
}

}  // namespace
}  // namespace mpte
