#include "geometry/csv_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(CsvIo, ParsesSimpleMatrix) {
  std::istringstream in("1,2,3\n4,5,6\n");
  const PointSet points = read_csv_points(in);
  ASSERT_EQ(points.size(), 2u);
  ASSERT_EQ(points.dim(), 3u);
  EXPECT_EQ(points.coord(0, 0), 1.0);
  EXPECT_EQ(points.coord(1, 2), 6.0);
}

TEST(CsvIo, ToleratesSpacesAndBlankLines) {
  std::istringstream in("1.5 , -2\n\n   \n3 ,4.25\n");
  const PointSet points = read_csv_points(in);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points.coord(0, 1), -2.0);
  EXPECT_EQ(points.coord(1, 1), 4.25);
}

TEST(CsvIo, ParsesScientificNotation) {
  std::istringstream in("1e3,-2.5e-2\n");
  const PointSet points = read_csv_points(in);
  EXPECT_EQ(points.coord(0, 0), 1000.0);
  EXPECT_EQ(points.coord(0, 1), -0.025);
}

TEST(CsvIo, RejectsRaggedRows) {
  std::istringstream in("1,2\n3,4,5\n");
  EXPECT_THROW((void)read_csv_points(in), MpteError);
}

TEST(CsvIo, RejectsGarbage) {
  std::istringstream bad_number("1,abc\n");
  EXPECT_THROW((void)read_csv_points(bad_number), MpteError);
  std::istringstream bad_separator("1;2\n");
  EXPECT_THROW((void)read_csv_points(bad_separator), MpteError);
}

TEST(CsvIo, EmptyInputGivesEmptySet) {
  std::istringstream in("");
  EXPECT_TRUE(read_csv_points(in).empty());
}

TEST(CsvIo, StreamRoundTripExact) {
  const PointSet points = generate_uniform_cube(50, 5, 100.0, 3);
  std::stringstream buffer;
  write_csv_points(points, buffer);
  const PointSet restored = read_csv_points(buffer);
  ASSERT_EQ(restored.size(), points.size());
  ASSERT_EQ(restored.dim(), points.dim());
  EXPECT_EQ(restored.raw(), points.raw());  // 17-digit precision
}

TEST(CsvIo, FileRoundTrip) {
  const PointSet points = generate_gaussian_clusters(30, 4, 3, 10.0, 1.0, 5);
  const std::string path = "/tmp/mpte_csv_io_test.csv";
  write_csv_points_file(points, path);
  const PointSet restored = read_csv_points_file(path);
  EXPECT_EQ(restored.raw(), points.raw());
  std::remove(path.c_str());
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_points_file("/no/such/file.csv"), MpteError);
}

}  // namespace
}  // namespace mpte
