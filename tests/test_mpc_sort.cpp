#include "mpc/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace mpte::mpc {
namespace {

std::vector<KV> random_records(std::size_t n, std::uint64_t seed,
                               std::uint64_t key_range = ~0ull) {
  Rng rng(seed);
  std::vector<KV> records(n);
  for (auto& kv : records) {
    kv.key = key_range == ~0ull ? rng() : rng.uniform_u64(key_range);
    kv.value = rng();
  }
  return records;
}

/// Gathers the sorted output and checks global order + multiset equality.
void expect_sorted_permutation(Cluster& cluster, std::vector<KV> input) {
  std::vector<KV> output;
  for (MachineId id = 0; id < cluster.num_machines(); ++id) {
    const auto part = cluster.store(id).get_vector<KV>("out");
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end(), kv_less));
    if (!output.empty() && !part.empty()) {
      EXPECT_FALSE(kv_less(part.front(), output.back()))
          << "blocks out of order at machine " << id;
    }
    output.insert(output.end(), part.begin(), part.end());
  }
  std::sort(input.begin(), input.end(), kv_less);
  EXPECT_EQ(output, input);
}

class SampleSortTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SampleSortTest, SortsRandomRecords) {
  const auto [machines, n] = GetParam();
  Cluster cluster(ClusterConfig{machines, 1 << 18, true});
  const auto input = random_records(n, 1234 + n);
  scatter_vector(cluster, "in", input);
  sample_sort_kv(cluster, "in", "out");
  expect_sorted_permutation(cluster, input);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleSortTest,
    ::testing::Values(std::make_tuple(1, 100), std::make_tuple(2, 0),
                      std::make_tuple(3, 1), std::make_tuple(4, 1000),
                      std::make_tuple(8, 2048), std::make_tuple(5, 77)));

TEST(SampleSort, HeavyDuplicateKeys) {
  Cluster cluster(ClusterConfig{4, 1 << 18, true});
  const auto input = random_records(500, 99, /*key_range=*/3);
  scatter_vector(cluster, "in", input);
  sample_sort_kv(cluster, "in", "out");
  expect_sorted_permutation(cluster, input);
}

TEST(SampleSort, AlreadySortedInput) {
  Cluster cluster(ClusterConfig{4, 1 << 18, true});
  std::vector<KV> input(300);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = KV{i, i};
  }
  scatter_vector(cluster, "in", input);
  sample_sort_kv(cluster, "in", "out");
  expect_sorted_permutation(cluster, input);
}

TEST(SampleSort, ConstantRoundCount) {
  // Round count must not grow with n: sample + select + broadcast(fanout 4
  // over 4 machines: 1 exchange + 1 persist) + route + local = 6.
  for (const std::size_t n : {64u, 512u, 4096u}) {
    Cluster cluster(ClusterConfig{4, 1 << 20, true});
    scatter_vector(cluster, "in", random_records(n, n));
    sample_sort_kv(cluster, "in", "out");
    EXPECT_EQ(cluster.stats().rounds(), 6u) << "n=" << n;
  }
}

TEST(SampleSort, DeterministicAcrossRuns) {
  std::vector<std::vector<KV>> runs;
  for (int run = 0; run < 2; ++run) {
    Cluster cluster(ClusterConfig{4, 1 << 18, true});
    scatter_vector(cluster, "in", random_records(200, 5));
    sample_sort_kv(cluster, "in", "out");
    runs.push_back(gather_vector<KV>(cluster, "out"));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(SampleSort, LoadIsRoughlyBalanced) {
  Cluster cluster(ClusterConfig{8, 1 << 18, true});
  const std::size_t n = 4096;
  scatter_vector(cluster, "in", random_records(n, 7));
  sample_sort_kv(cluster, "in", "out");
  std::size_t largest = 0;
  for (MachineId id = 0; id < 8; ++id) {
    largest = std::max(largest,
                       cluster.store(id).get_vector<KV>("out").size());
  }
  // Perfect balance would be 512; random splitters typically stay under 3x.
  EXPECT_LT(largest, 3 * n / 8);
}

}  // namespace
}  // namespace mpte::mpc
