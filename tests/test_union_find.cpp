#include "apps/union_find.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mpte {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1u);
  }
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_FALSE(uf.unite(1, 3));  // already connected
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.size_of(3), 4u);
  EXPECT_TRUE(uf.connected(1, 2));
  EXPECT_FALSE(uf.connected(0, 4));
}

TEST(UnionFind, TransitivityStress) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  // Chain unions: everything ends connected.
  for (std::size_t i = 1; i < n; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.size_of(0), n);
  Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    EXPECT_TRUE(uf.connected(rng.uniform_u64(n), rng.uniform_u64(n)));
  }
}

TEST(UnionFind, RandomUnionsMatchNaive) {
  const std::size_t n = 64;
  UnionFind uf(n);
  std::vector<std::size_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = i;
  Rng rng(7);
  for (int t = 0; t < 100; ++t) {
    const std::size_t a = rng.uniform_u64(n);
    const std::size_t b = rng.uniform_u64(n);
    uf.unite(a, b);
    // Naive relabel.
    const std::size_t from = label[a], to = label[b];
    if (from != to) {
      for (auto& l : label) {
        if (l == from) l = to;
      }
    }
    // Spot-check consistency.
    for (int s = 0; s < 10; ++s) {
      const std::size_t x = rng.uniform_u64(n);
      const std::size_t y = rng.uniform_u64(n);
      EXPECT_EQ(uf.connected(x, y), label[x] == label[y]);
    }
  }
}

}  // namespace
}  // namespace mpte
