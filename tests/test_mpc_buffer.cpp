#include "mpc/buffer.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mpc/machine.hpp"
#include "mpc/primitives.hpp"

namespace mpte::mpc {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return std::vector<std::uint8_t>(list);
}

TEST(Buffer, DefaultIsEmptyWithoutAllocating) {
  Buffer::reset_counters();
  const Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(Buffer::slabs_created(), 0u);
}

TEST(Buffer, EmptyVectorDoesNotAllocateASlab) {
  Buffer::reset_counters();
  const Buffer b(std::vector<std::uint8_t>{});
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(Buffer::slabs_created(), 0u);
}

TEST(Buffer, TakesOwnershipAndExposesBytes) {
  Buffer::reset_counters();
  const Buffer b(bytes({1, 2, 3}));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[0], 1);
  EXPECT_EQ(b.data()[2], 3);
  EXPECT_EQ(Buffer::slabs_created(), 1u);
}

TEST(Buffer, CopiesShareTheSlab) {
  Buffer::reset_counters();
  const Buffer a(bytes({9, 8, 7}));
  const Buffer b = a;      // NOLINT(performance-unnecessary-copy-...)
  const Buffer c = b;
  EXPECT_EQ(Buffer::slabs_created(), 1u);
  EXPECT_EQ(a.use_count(), 3u);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.data(), c.data());
}

TEST(Buffer, CopyOfMaterializesANewSlab) {
  Buffer::reset_counters();
  const Buffer a(bytes({4, 5}));
  const Buffer b = Buffer::copy_of(a.span());
  EXPECT_EQ(Buffer::slabs_created(), 2u);
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Buffer, EqualityComparesBytesNotIdentity) {
  const Buffer a(bytes({1, 2}));
  const Buffer b(bytes({1, 2}));
  const Buffer c(bytes({1, 3}));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, bytes({1, 2}));
  EXPECT_NE(a, bytes({1, 2, 3}));
  EXPECT_EQ(Buffer(), Buffer());
}

TEST(LocalStoreBuffers, ByteAccountingAcrossSetOverwriteErase) {
  LocalStore store;
  EXPECT_EQ(store.resident_bytes(), 0u);

  store.set_blob("a", Buffer(std::vector<std::uint8_t>(100)));
  EXPECT_EQ(store.resident_bytes(), 100u);

  store.set_blob("b", Buffer(std::vector<std::uint8_t>(40)));
  EXPECT_EQ(store.resident_bytes(), 140u);

  // Overwrite replaces, not accumulates.
  store.set_blob("a", Buffer(std::vector<std::uint8_t>(7)));
  EXPECT_EQ(store.resident_bytes(), 47u);

  // Overwriting with an empty buffer leaves only the other key's bytes.
  store.set_blob("a", Buffer());
  EXPECT_EQ(store.resident_bytes(), 40u);

  store.erase("b");
  EXPECT_EQ(store.resident_bytes(), 0u);

  // Erasing a missing key is a no-op.
  store.erase("nope");
  EXPECT_EQ(store.resident_bytes(), 0u);

  store.set_blob("c", Buffer(std::vector<std::uint8_t>(5)));
  store.clear();
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(LocalStoreBuffers, SharedSlabIsChargedToEveryHolder) {
  // The model prices what each machine holds, not how the host
  // deduplicates: one slab referenced by two stores charges both.
  const Buffer slab(std::vector<std::uint8_t>(64));
  LocalStore a;
  LocalStore b;
  a.set_blob("x", slab);
  b.set_blob("x", slab);
  EXPECT_EQ(a.resident_bytes(), 64u);
  EXPECT_EQ(b.resident_bytes(), 64u);
  EXPECT_EQ(slab.use_count(), 3u);  // local + two stores
}

TEST(SerializerSizeHint, ReservesWithoutChangingContents) {
  Serializer hinted(wire_size<std::uint64_t>(3));
  Serializer plain;
  const std::vector<std::uint64_t> values{1, 2, 3};
  hinted.write_vector(values);
  plain.write_vector(values);
  EXPECT_EQ(hinted.bytes(), plain.bytes());
}

TEST(SerializerTake, LeavesTheSerializerReusable) {
  Serializer s;
  s.write<std::uint32_t>(0xAABBCCDD);
  const auto first = s.take();
  EXPECT_EQ(first.size(), 4u);

  // Regression: take() must leave the serializer empty and writable, not
  // in a moved-from limbo.
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.bytes().empty());
  s.write<std::uint16_t>(0x1122);
  EXPECT_EQ(s.size(), 2u);
  const auto second = s.take();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], 0x22);
  EXPECT_EQ(s.size(), 0u);
}

TEST(BroadcastZeroCopy, OneSlabServesEveryMachine) {
  // The zero-copy contract of the Buffer refactor: broadcasting a blob to
  // M machines materializes no new slabs — every send refcounts the
  // root's slab, single-fragment delivery moves it, and persisting shares
  // it. Before the refactor this deep-copied O(M) times.
  for (const std::size_t machines : {4u, 16u}) {
    Cluster cluster(ClusterConfig{machines, 1 << 20, true});
    cluster.store(0).set_blob("blob", std::vector<std::uint8_t>(1024, 7));
    Buffer::reset_counters();
    broadcast_blob(cluster, 0, "blob", 3);
    EXPECT_EQ(Buffer::slabs_created(), 0u) << "machines=" << machines;
    for (MachineId id = 0; id < machines; ++id) {
      ASSERT_EQ(cluster.store(id).blob("blob").size(), 1024u);
      // Every machine's copy aliases the root's slab.
      EXPECT_EQ(cluster.store(id).blob("blob").data(),
                cluster.store(0).blob("blob").data());
    }
  }
}

TEST(WireRoundTrip, ReceiveMaterializesExactlyOneSharedSlab) {
  // The wire path's zero-copy contract: from_fd receives straight into one
  // freshly materialized slab, and everything downstream — store, copies —
  // refcounts that same slab. A reader that buffered and re-copied would
  // materialize two.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const Buffer sent((std::vector<std::uint8_t>(payload)));
  ASSERT_TRUE(sent.write_fd(sv[0]).ok());

  Buffer::reset_counters();
  auto received = Buffer::from_fd(sv[1], payload.size(), 1000);
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(Buffer::slabs_created(), 1u);
  EXPECT_TRUE(*received == payload);

  // Persisting and copying the received Buffer share the wire slab.
  LocalStore store;
  store.set_blob("wire", *received);
  EXPECT_EQ(Buffer::slabs_created(), 1u);
  EXPECT_EQ(store.blob("wire").data(), received->data());

  // Empty receive allocates nothing; EOF surfaces as kUnavailable.
  auto empty = Buffer::from_fd(sv[1], 0, 1000);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(Buffer::slabs_created(), 1u);
  ::close(sv[0]);
  auto eof = Buffer::from_fd(sv[1], 16, 1000);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  ::close(sv[1]);
}

TEST(BroadcastZeroCopy, SelfSendSharesTheSlab) {
  Cluster cluster(ClusterConfig{2, 1 << 16, true});
  cluster.store(0).set_blob("x", std::vector<std::uint8_t>(256, 1));
  Buffer::reset_counters();
  cluster.run_round([&](MachineContext& ctx) {
    if (ctx.id() == 0) ctx.send(0, ctx.store().blob("x"));
  });
  EXPECT_EQ(Buffer::slabs_created(), 0u);
  ASSERT_EQ(cluster.store(0).resident_bytes(), 256u);
}

}  // namespace
}  // namespace mpte::mpc
