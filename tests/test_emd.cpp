#include "apps/emd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

/// Builds one embedding over the concatenation of a and b.
Embedding embed_union(const PointSet& a, const PointSet& b,
                      std::uint64_t seed) {
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(all, options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(ExactEmd, ValidatesInputs) {
  const PointSet a = generate_uniform_cube(3, 2, 1.0, 1);
  const PointSet b = generate_uniform_cube(4, 2, 1.0, 2);
  EXPECT_THROW((void)exact_emd(a, b), MpteError);
  const PointSet c = generate_uniform_cube(3, 3, 1.0, 3);
  EXPECT_THROW((void)exact_emd(a, c), MpteError);
  EXPECT_EQ(exact_emd(PointSet(0, 2), PointSet(0, 2)), 0.0);
}

TEST(ExactEmd, IdenticalSetsCostZero) {
  const PointSet a = generate_uniform_cube(10, 3, 5.0, 5);
  EXPECT_NEAR(exact_emd(a, a), 0.0, 1e-9);
}

TEST(ExactEmd, SinglePairIsDistance) {
  PointSet a(1, 2, {0, 0});
  PointSet b(1, 2, {3, 4});
  EXPECT_NEAR(exact_emd(a, b), 5.0, 1e-12);
}

TEST(ExactEmd, PicksOptimalMatching) {
  // a = {0, 10}, b = {1, 11} on a line: identity matching costs 2, the
  // crossed matching costs 20.
  PointSet a(2, 1, {0, 10});
  PointSet b(2, 1, {1, 11});
  EXPECT_NEAR(exact_emd(a, b), 2.0, 1e-12);
}

TEST(ExactEmd, TranslationCost) {
  // Translating a set by v costs exactly n * ||v|| when disjoint supports
  // line up.
  const PointSet a = generate_uniform_cube(8, 2, 1.0, 7);
  PointSet b = a;
  for (std::size_t i = 0; i < b.size(); ++i) b[i][0] += 100.0;
  EXPECT_NEAR(exact_emd(a, b), 8 * 100.0, 8 * 2.0);
}

TEST(TreeEmd, BalancedSidesRequired) {
  const PointSet a = generate_uniform_cube(4, 2, 10.0, 9);
  const PointSet b = generate_uniform_cube(4, 2, 10.0, 10);
  const Embedding embedding = embed_union(a, b, 11);
  std::vector<int> bad_side(8, 1);  // sums to 8, not 0
  EXPECT_THROW((void)tree_emd(embedding.tree, bad_side), MpteError);
  std::vector<int> short_side(3, 0);
  EXPECT_THROW((void)tree_emd(embedding.tree, short_side), MpteError);
}

TEST(TreeEmd, DominatesExactEmd) {
  // Tree distances dominate Euclidean, so the tree flow (an upper bound on
  // the optimal tree matching too) dominates true EMD. Units: the tree is
  // built on quantized coordinates, so compare in input units.
  const PointSet a = generate_uniform_cube(12, 3, 20.0, 13);
  const PointSet b = generate_uniform_cube(12, 3, 20.0, 14);
  const Embedding embedding = embed_union(a, b, 15);
  const double tree =
      tree_emd_split(embedding.tree, a.size()) * embedding.scale_to_input;
  const double exact = exact_emd(a, b);
  EXPECT_GE(tree, exact * (1.0 - 0.06));
}

TEST(TreeEmd, ApproximationReasonableOnAverage) {
  // Average the tree EMD over independent trees; the ratio to exact EMD
  // should be modest (the Corollary 1.3 regime).
  const PointSet a = generate_uniform_cube(15, 3, 20.0, 17);
  const PointSet b = generate_uniform_cube(15, 3, 20.0, 18);
  const double exact = exact_emd(a, b);
  double sum_tree = 0.0;
  const int trees = 8;
  for (int t = 0; t < trees; ++t) {
    const Embedding embedding = embed_union(a, b, 100 + t);
    sum_tree +=
        tree_emd_split(embedding.tree, a.size()) * embedding.scale_to_input;
  }
  const double avg_ratio = sum_tree / trees / exact;
  EXPECT_GE(avg_ratio, 0.9);
  EXPECT_LT(avg_ratio, 60.0);
}

TEST(TreeEmd, ZeroWhenSidesCoincide) {
  // Identical multisets on both sides: every subtree balances.
  const PointSet a = generate_uniform_cube(10, 2, 10.0, 19);
  const Embedding embedding = embed_union(a, a, 21);
  // Points i and i + n are identical, so side +1/-1 cancels within each
  // leaf cluster.
  EXPECT_NEAR(tree_emd_split(embedding.tree, a.size()), 0.0, 1e-9);
}

TEST(ExactEmdWeighted, ReducesToUnweightedForUnitMasses) {
  const PointSet a = generate_uniform_cube(8, 2, 20.0, 31);
  const PointSet b = generate_uniform_cube(8, 2, 20.0, 32);
  const std::vector<std::int64_t> unit(8, 1);
  EXPECT_NEAR(exact_emd_weighted(a, b, unit, unit), exact_emd(a, b), 1e-9);
}

TEST(ExactEmdWeighted, KnownTransportPlan) {
  // 3 units at x=0 must split to 2 units at x=1 and 1 unit at x=5.
  PointSet a(1, 1, {0.0});
  PointSet b(2, 1, {1.0, 5.0});
  EXPECT_NEAR(exact_emd_weighted(a, b, {3}, {2, 1}), 2.0 * 1.0 + 1.0 * 5.0,
              1e-12);
}

TEST(ExactEmdWeighted, Validation) {
  PointSet a(1, 1, {0.0});
  PointSet b(1, 1, {1.0});
  EXPECT_THROW((void)exact_emd_weighted(a, b, {1}, {2}), MpteError);
  EXPECT_THROW((void)exact_emd_weighted(a, b, {-1}, {-1}), MpteError);
  EXPECT_THROW((void)exact_emd_weighted(a, b, {1, 2}, {3}), MpteError);
  EXPECT_EQ(exact_emd_weighted(a, b, {0}, {0}), 0.0);
}

TEST(TreeEmdWeighted, MatchesUnweightedForUnitSides) {
  const PointSet a = generate_uniform_cube(10, 2, 20.0, 33);
  const PointSet b = generate_uniform_cube(10, 2, 20.0, 34);
  const Embedding embedding = embed_union(a, b, 35);
  std::vector<std::int64_t> mass(20);
  for (std::size_t i = 0; i < 20; ++i) mass[i] = i < 10 ? 1 : -1;
  EXPECT_EQ(tree_emd_weighted(embedding.tree, mass),
            tree_emd_split(embedding.tree, 10));
}

TEST(TreeEmdWeighted, ScalesLinearlyInMass) {
  const PointSet a = generate_uniform_cube(6, 2, 20.0, 36);
  const PointSet b = generate_uniform_cube(6, 2, 20.0, 37);
  const Embedding embedding = embed_union(a, b, 38);
  std::vector<std::int64_t> mass(12), triple(12);
  for (std::size_t i = 0; i < 12; ++i) {
    mass[i] = i < 6 ? 1 : -1;
    triple[i] = 3 * mass[i];
  }
  EXPECT_NEAR(tree_emd_weighted(embedding.tree, triple),
              3.0 * tree_emd_weighted(embedding.tree, mass), 1e-9);
}

TEST(TreeEmdWeighted, DominatesExactWeighted) {
  const PointSet a = generate_uniform_cube(6, 2, 20.0, 39);
  const PointSet b = generate_uniform_cube(4, 2, 20.0, 40);
  const std::vector<std::int64_t> mass_a{2, 1, 1, 3, 1, 2};
  const std::vector<std::int64_t> mass_b{4, 2, 3, 1};
  const double exact = exact_emd_weighted(a, b, mass_a, mass_b);

  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 41;
  const auto embedding = embed(all, options);
  ASSERT_TRUE(embedding.ok());
  std::vector<std::int64_t> mass(10);
  for (std::size_t i = 0; i < 6; ++i) mass[i] = mass_a[i];
  for (std::size_t j = 0; j < 4; ++j) mass[6 + j] = -mass_b[j];
  const double tree = tree_emd_weighted(embedding->tree, mass) *
                      embedding->scale_to_input;
  EXPECT_GE(tree, exact * 0.9);
}

TEST(TreeEmdWeighted, UnbalancedMassThrows) {
  const PointSet a = generate_uniform_cube(4, 2, 20.0, 42);
  const Embedding embedding = embed_union(a, a, 43);
  EXPECT_THROW(
      (void)tree_emd_weighted(embedding.tree,
                              std::vector<std::int64_t>(8, 1)),
      MpteError);
}

TEST(TreeEmd, CustomSidesMatchSplitHelper) {
  const PointSet a = generate_uniform_cube(6, 2, 10.0, 23);
  const PointSet b = generate_uniform_cube(6, 2, 10.0, 24);
  const Embedding embedding = embed_union(a, b, 25);
  std::vector<int> side(12);
  for (std::size_t i = 0; i < 12; ++i) side[i] = i < 6 ? 1 : -1;
  EXPECT_EQ(tree_emd(embedding.tree, side),
            tree_emd_split(embedding.tree, 6));
}

}  // namespace
}  // namespace mpte
