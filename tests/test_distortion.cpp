#include "tree/distortion.hpp"

#include <gtest/gtest.h>

#include <set>

#include "geometry/generators.hpp"
#include "geometry/quantize.hpp"
#include "partition/hybrid_partition.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte {
namespace {

TEST(SamplePairs, AllPairsWhenSmall) {
  const auto pairs = sample_pairs(5, 100, 1);
  EXPECT_EQ(pairs.size(), 10u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> unique(pairs.begin(),
                                                           pairs.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto& [i, j] : pairs) EXPECT_LT(i, j);
}

TEST(SamplePairs, SamplesWhenLarge) {
  const auto pairs = sample_pairs(1000, 50, 2);
  EXPECT_EQ(pairs.size(), 50u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> unique(pairs.begin(),
                                                           pairs.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const auto& [i, j] : pairs) {
    EXPECT_LT(i, j);
    EXPECT_LT(j, 1000u);
  }
}

TEST(SamplePairs, EdgeCases) {
  EXPECT_TRUE(sample_pairs(0, 10, 1).empty());
  EXPECT_TRUE(sample_pairs(1, 10, 1).empty());
  EXPECT_EQ(sample_pairs(2, 10, 1).size(), 1u);
}

class DistortionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const PointSet raw = generate_uniform_cube(80, 4, 50.0, 3);
    points_ = quantize_to_grid(raw, 256).points;
  }

  Hst make_tree(std::uint64_t seed) const {
    HybridOptions options;
    options.delta = 256;
    options.num_buckets = 2;
    options.seed = seed;
    const auto h = build_hybrid_hierarchy(points_, options);
    EXPECT_TRUE(h.ok());
    return build_hst(*h);
  }

  PointSet points_;
};

TEST_F(DistortionFixture, DominationHolds) {
  const Hst tree = make_tree(1);
  const auto stats = measure_distortion(tree, points_, 10000, 5);
  EXPECT_GE(stats.min_ratio, 1.0) << "domination violated";
  EXPECT_GE(stats.max_ratio, stats.mean_ratio);
  EXPECT_GE(stats.mean_ratio, stats.min_ratio);
  EXPECT_EQ(stats.pairs, 80u * 79u / 2u);
}

TEST_F(DistortionFixture, MismatchedSizesThrow) {
  const Hst tree = make_tree(1);
  const PointSet other = generate_uniform_cube(10, 4, 1.0, 1);
  EXPECT_THROW((void)measure_distortion(tree, other, 10, 1), MpteError);
}

TEST_F(DistortionFixture, ExpectedDistortionAveragesTrees) {
  std::vector<Hst> trees;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    trees.push_back(make_tree(seed));
  }
  const auto ensemble =
      measure_expected_distortion(trees, points_, 2000, 7);
  EXPECT_EQ(ensemble.trees, 8u);
  EXPECT_GE(ensemble.min_single_ratio, 1.0);
  EXPECT_GE(ensemble.max_expected_ratio, ensemble.mean_expected_ratio);

  // Averaging cannot exceed the worst single tree's max ratio.
  double worst_single = 0.0;
  for (const Hst& tree : trees) {
    worst_single = std::max(
        worst_single,
        measure_distortion(tree, points_, 2000, 7).max_ratio);
  }
  EXPECT_LE(ensemble.max_expected_ratio, worst_single + 1e-9);
}

TEST_F(DistortionFixture, NoTreesThrows) {
  EXPECT_THROW((void)measure_expected_distortion({}, points_, 10, 1),
               MpteError);
}

TEST(Distortion, SkipsZeroDistancePairs) {
  // Two identical points plus one distinct.
  PointSet points(3, 2, {5, 5, 5, 5, 40, 40});
  const Quantized q = quantize_to_grid(points, 64);
  HybridOptions options;
  options.delta = 64;
  options.num_buckets = 1;
  options.seed = 3;
  const auto h = build_hybrid_hierarchy(q.points, options);
  ASSERT_TRUE(h.ok());
  const Hst tree = build_hst(*h);
  const auto stats = measure_distortion(tree, q.points, 100, 1);
  EXPECT_EQ(stats.pairs, 2u);  // pair (0,1) skipped
  EXPECT_GE(stats.min_ratio, 1.0);
}

}  // namespace
}  // namespace mpte
