#include "tree/hst.hpp"

#include <gtest/gtest.h>

namespace mpte {
namespace {

/// Hand-built tree (edges drawn with / and |):
///          root(0)
///         /       |
///     a(1,w=4)   b(2,w=4)
///      /    |        |
///  leaf0   leaf1    leaf2
/// (w=0)    (w=2)    (w=0)
Hst make_small_tree() {
  std::vector<HstNode> nodes(6);
  nodes[0] = HstNode{100, -1, 0, 0.0, -1, 3};
  nodes[1] = HstNode{101, 0, 1, 4.0, -1, 2};
  nodes[2] = HstNode{102, 0, 1, 4.0, -1, 1};
  nodes[3] = HstNode{103, 1, 2, 0.0, 0, 1};
  nodes[4] = HstNode{104, 1, 2, 2.0, 1, 1};
  nodes[5] = HstNode{105, 2, 2, 0.0, 2, 1};
  return Hst(std::move(nodes), {3, 4, 5});
}

TEST(Hst, BasicShape) {
  const Hst tree = make_small_tree();
  EXPECT_EQ(tree.num_nodes(), 6u);
  EXPECT_EQ(tree.num_points(), 3u);
  EXPECT_EQ(tree.root(), 0u);
  EXPECT_EQ(tree.leaf(0), 3u);
  EXPECT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.children(1).size(), 2u);
  EXPECT_EQ(tree.depth(), 2u);
}

TEST(Hst, ValidatePasses) {
  EXPECT_TRUE(make_small_tree().validate().ok());
}

TEST(Hst, DistanceWithinSubtree) {
  const Hst tree = make_small_tree();
  // leaf0 and leaf1 meet at node a: 0 + 2.
  EXPECT_EQ(tree.distance(0, 1), 2.0);
}

TEST(Hst, DistanceAcrossRoot) {
  const Hst tree = make_small_tree();
  // leaf0 -> a -> root (0+4), leaf2 -> b -> root (0+4).
  EXPECT_EQ(tree.distance(0, 2), 8.0);
  EXPECT_EQ(tree.distance(1, 2), 2.0 + 4.0 + 4.0);
}

TEST(Hst, DistanceSymmetricAndZeroOnSelf) {
  const Hst tree = make_small_tree();
  EXPECT_EQ(tree.distance(0, 2), tree.distance(2, 0));
  EXPECT_EQ(tree.distance(1, 1), 0.0);
}

TEST(Hst, TriangleInequality) {
  const Hst tree = make_small_tree();
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_LE(tree.distance(a, c),
                  tree.distance(a, b) + tree.distance(b, c) + 1e-12);
      }
    }
  }
}

TEST(Hst, LcaIdentities) {
  const Hst tree = make_small_tree();
  EXPECT_EQ(tree.lca(0, 1), 1u);
  EXPECT_EQ(tree.lca(0, 2), 0u);
  EXPECT_EQ(tree.lca(2, 2), 5u);  // leaf itself
}

TEST(Hst, DepthWeight) {
  const Hst tree = make_small_tree();
  EXPECT_EQ(tree.depth_weight(4), 6.0);  // 2 + 4
  EXPECT_EQ(tree.depth_weight(0), 0.0);
}

TEST(Hst, NonTopologicalOrderThrows) {
  std::vector<HstNode> nodes(2);
  nodes[0] = HstNode{1, -1, 0, 0.0, -1, 1};
  nodes[1] = HstNode{2, 1, 1, 1.0, 0, 1};  // parent == self index
  EXPECT_THROW(Hst(std::move(nodes), {1}), MpteError);
}

TEST(Hst, EmptyThrows) {
  EXPECT_THROW(Hst({}, {}), MpteError);
}

TEST(Hst, ValidateCatchesBadSubtreeSize) {
  auto nodes = std::vector<HstNode>(3);
  nodes[0] = HstNode{1, -1, 0, 0.0, -1, 5};  // wrong: should be 2
  nodes[1] = HstNode{2, 0, 1, 1.0, 0, 1};
  nodes[2] = HstNode{3, 0, 1, 1.0, 1, 1};
  const Hst tree(std::move(nodes), {1, 2});
  EXPECT_FALSE(tree.validate().ok());
}

TEST(Hst, ValidateCatchesLevelInversion) {
  auto nodes = std::vector<HstNode>(2);
  nodes[0] = HstNode{1, -1, 5, 0.0, -1, 1};
  nodes[1] = HstNode{2, 0, 5, 1.0, 0, 1};  // same level as parent
  const Hst tree(std::move(nodes), {1});
  EXPECT_FALSE(tree.validate().ok());
}

TEST(Hst, ValidateCatchesMissingLeaf) {
  auto nodes = std::vector<HstNode>(2);
  nodes[0] = HstNode{1, -1, 0, 0.0, -1, 1};
  nodes[1] = HstNode{2, 0, 1, 1.0, 0, 1};
  // Two points claimed but only one leaf.
  EXPECT_FALSE(Hst(std::move(nodes), {1, 1}).validate().ok());
}

}  // namespace
}  // namespace mpte
