#include "geometry/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(Quantize, CoordinatesLandOnIntegerGrid) {
  const PointSet points = generate_uniform_cube(100, 3, 50.0, 7);
  const Quantized q = quantize_to_grid(points, 1024);
  EXPECT_EQ(q.delta, 1024u);
  for (std::size_t i = 0; i < q.points.size(); ++i) {
    for (std::size_t j = 0; j < q.points.dim(); ++j) {
      const double c = q.points.coord(i, j);
      EXPECT_NEAR(c, std::round(c), 0.0);
      EXPECT_GE(c, 1.0);
      EXPECT_LE(c, 1024.0);
    }
  }
}

TEST(Quantize, ScaleBackReconstructsWidths) {
  PointSet points(2, 1, {0.0, 100.0});
  const Quantized q = quantize_to_grid(points, 101);
  // Cell = 100/100 = 1; the two points land on 1 and 101.
  EXPECT_EQ(q.points.coord(0, 0), 1.0);
  EXPECT_EQ(q.points.coord(1, 0), 101.0);
  EXPECT_NEAR(q.scale_back, 1.0, 1e-12);
  EXPECT_NEAR(l2_distance(q.points[0], q.points[1]) * q.scale_back, 100.0,
              1e-9);
}

TEST(Quantize, RoundingErrorWithinHalfCell) {
  const PointSet points = generate_uniform_cube(200, 4, 9.0, 11);
  const Quantized q = quantize_to_grid(points, 256);
  EXPECT_LE(q.max_rounding_error, q.scale_back / 2.0 + 1e-12);
}

TEST(Quantize, DistancePerturbationBounded) {
  const PointSet points = generate_uniform_cube(64, 3, 100.0, 13);
  const Quantized q = quantize_to_grid(points, 1 << 14);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double snapped =
          l2_distance(q.points[i], q.points[j]) * q.scale_back;
      const double slack =
          std::sqrt(3.0) * q.scale_back;  // sqrt(d) * cell bound
      EXPECT_NEAR(snapped, orig, slack + 1e-9);
    }
  }
}

TEST(Quantize, DegenerateIdenticalPoints) {
  PointSet points(3, 2, {5, 5, 5, 5, 5, 5});
  const Quantized q = quantize_to_grid(points, 16);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(q.points.coord(i, 0), 1.0);
    EXPECT_EQ(q.points.coord(i, 1), 1.0);
  }
}

TEST(Quantize, InvalidArgumentsThrow) {
  PointSet points(2, 1, {0.0, 1.0});
  EXPECT_THROW(quantize_to_grid(points, 1), MpteError);
  EXPECT_THROW(quantize_to_grid(PointSet{}, 16), MpteError);
}

TEST(RecommendedDelta, ScalesWithPrecision) {
  const PointSet points = generate_uniform_cube(50, 2, 10.0, 17);
  const std::uint64_t coarse = recommended_delta(points, 0.5, 1 << 30);
  const std::uint64_t fine = recommended_delta(points, 0.01, 1 << 30);
  EXPECT_GT(fine, coarse);
  // Halving eps roughly doubles delta.
  EXPECT_GT(fine, 10 * coarse);
}

TEST(RecommendedDelta, ClampsToMax) {
  const PointSet points = generate_uniform_cube(50, 2, 10.0, 19);
  EXPECT_LE(recommended_delta(points, 1e-9, 4096), 4096u);
}

TEST(RecommendedDelta, PreservesPairwiseDistancesWithinEps) {
  const PointSet points = generate_uniform_cube(32, 3, 10.0, 23);
  const double eps = 0.05;
  const std::uint64_t delta = recommended_delta(points, eps, 1 << 22);
  const Quantized q = quantize_to_grid(points, delta);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double orig = l2_distance(points[i], points[j]);
      const double snapped =
          l2_distance(q.points[i], q.points[j]) * q.scale_back;
      EXPECT_LE(std::abs(snapped - orig), eps * orig + 1e-9)
          << "pair " << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace mpte
