// End-to-end properties across the whole pipeline: the Theorem 1/2
// contracts (domination + expected distortion scaling), the consistency of
// the sequential and MPC paths, and the application stack running on one
// shared embedding.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/densest_ball.hpp"
#include "apps/emd.hpp"
#include "apps/kmedian.hpp"
#include "apps/mst.hpp"
#include "core/embedder.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte {
namespace {

TEST(Integration, DistortionOrderingAcrossMethods) {
  // Theorem 2's sqrt(d*r)*logDelta shape, measured: expected distortion is
  // monotone in r (ball r=1 best, grid-like r=d worst), and the ball
  // extreme — whose tractability for large d is the entire reason hybrid
  // partitioning exists — matches or beats Arora's grid baseline. (The
  // asymptotic hybrid-vs-grid gap at matched r needs d = Theta(log n)
  // scales; the E1/E3 benches chart the trend.)
  const PointSet points = generate_uniform_cube(256, 4, 50.0, 3);
  const std::size_t trees = 8;

  const auto expected_ratio = [&](PartitionMethod method,
                                  std::uint32_t buckets) {
    std::vector<Hst> forest;
    for (std::size_t t = 0; t < trees; ++t) {
      EmbedOptions options;
      options.method = method;
      options.num_buckets = buckets;
      options.use_fjlt = false;
      options.delta = 1024;
      options.seed = 1000 + t;
      auto result = embed(points, options);
      EXPECT_TRUE(result.ok());
      forest.push_back(std::move(result->tree));
    }
    return measure_expected_distortion(forest, points, 3000, 17)
        .mean_expected_ratio;
  };

  const double ball = expected_ratio(PartitionMethod::kBall, 0);
  const double hybrid_r2 = expected_ratio(PartitionMethod::kHybrid, 2);
  const double hybrid_rd = expected_ratio(PartitionMethod::kHybrid, 4);
  const double grid = expected_ratio(PartitionMethod::kGrid, 0);

  EXPECT_LT(ball, hybrid_r2) << "distortion must grow with r";
  EXPECT_LT(hybrid_r2, hybrid_rd) << "distortion must grow with r";
  EXPECT_LT(ball, grid * 1.05) << "ball extreme at least matches grid";
}

TEST(Integration, MpcPipelineEqualsSequentialThroughFjlt) {
  // With a roomy cluster the FJLT runs in local mode (bit-identical), so
  // the *entire* MPC pipeline must reproduce the sequential tree metric.
  const PointSet points = generate_uniform_cube(48, 130, 10.0, 5);

  EmbedOptions seq;
  seq.use_fjlt = true;
  seq.fjlt_xi = 0.4;
  seq.delta = 512;
  seq.seed = 7;
  const auto a = embed(points, seq);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->fjlt_applied);

  mpc::Cluster cluster(mpc::ClusterConfig{4, 1 << 23, true});
  MpcEmbedOptions par;
  par.use_fjlt = true;
  par.fjlt_xi = 0.4;
  par.delta = 512;
  par.seed = 7;
  const auto b = mpc_embed(cluster, points, par);
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  ASSERT_TRUE(b->fjlt_applied);

  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_DOUBLE_EQ(a->tree.distance(i, j), b->tree.distance(i, j));
    }
  }
}

TEST(Integration, ApplicationsShareOneEmbedding) {
  const PointSet points = generate_gaussian_clusters(80, 4, 4, 200.0, 2.0, 11);
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 13;
  const auto embedding = embed(points, options);
  ASSERT_TRUE(embedding.ok());
  ASSERT_TRUE(embedding->tree.validate().ok());

  // MST.
  const MstResult mst = tree_mst(embedding->tree, points);
  EXPECT_EQ(mst.edges.size(), points.size() - 1);
  EXPECT_GE(mst.total_length, exact_mst(points).total_length - 1e-9);

  // Densest ball.
  const auto ball = densest_ball_tree(embedding->tree, 1e9);
  EXPECT_EQ(ball.count, points.size());

  // k-median.
  const auto kmed = tree_kmedian_dp(embedding->tree, 4);
  EXPECT_EQ(kmed.medians.size(), 4u);
  EXPECT_GT(kmed.tree_cost, 0.0);

  // EMD between the first and second half of the same set.
  ASSERT_EQ(points.size() % 2, 0u);
  const double emd = tree_emd_split(embedding->tree, points.size() / 2);
  EXPECT_GE(emd, 0.0);
}

TEST(Integration, DistortionScalesWithDeltaNotN) {
  // Theorem 2: expected distortion ~ sqrt(d r) log Delta. Growing n at
  // fixed Delta should barely move it; growing Delta should.
  const auto mean_expected = [&](std::size_t n, std::uint64_t delta) {
    const PointSet points = generate_uniform_cube(n, 6, 100.0, 17);
    std::vector<Hst> forest;
    for (std::size_t t = 0; t < 8; ++t) {
      EmbedOptions options;
      options.use_fjlt = false;
      options.delta = delta;
      options.num_buckets = 3;
      options.seed = 300 + t;
      auto result = embed(points, options);
      EXPECT_TRUE(result.ok());
      forest.push_back(std::move(result->tree));
    }
    return measure_expected_distortion(forest, points, 1500, 23)
        .mean_expected_ratio;
  };

  const double small_delta = mean_expected(96, 1 << 6);
  const double large_delta = mean_expected(96, 1 << 14);
  EXPECT_GT(large_delta, small_delta * 1.3)
      << "distortion should grow with log Delta";

  const double small_n = mean_expected(48, 1 << 10);
  const double large_n = mean_expected(192, 1 << 10);
  EXPECT_LT(large_n, small_n * 2.0)
      << "distortion should be insensitive to n at fixed Delta";
}

TEST(Integration, EveryMethodDominatesOnAdversarialLattice) {
  const PointSet points = generate_lattice(125, 3, 3.0);
  for (const auto method :
       {PartitionMethod::kGrid, PartitionMethod::kBall,
        PartitionMethod::kHybrid}) {
    EmbedOptions options;
    options.method = method;
    options.use_fjlt = false;
    options.seed = 29;
    const auto result = embed(points, options);
    ASSERT_TRUE(result.ok()) << to_string(method);
    const auto stats =
        measure_distortion(result->tree, result->embedded_points, 4000, 1);
    EXPECT_GE(stats.min_ratio, 1.0) << to_string(method);
  }
}

}  // namespace
}  // namespace mpte
