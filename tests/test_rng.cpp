#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mpte {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministicAndKeyed) {
  const Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c1_again = parent.split(1);
  Rng c2 = parent.split(2);
  EXPECT_EQ(c1(), c1_again());
  EXPECT_NE(c1(), c2());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.split(5);
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformU64CoversSmallRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_u64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(23);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, NoObviousCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 100; ++a) {
    for (std::uint64_t b = 0; b < 100; ++b) {
      seen.insert(hash_combine(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 10000u);
}

// Chi-squared sanity on byte uniformity.
TEST(Rng, BytesRoughlyUniform) {
  Rng rng(31);
  std::vector<int> counts(256, 0);
  const int draws = 8192;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng();
    for (int b = 0; b < 8; ++b) ++counts[(v >> (8 * b)) & 0xff];
  }
  const double expected = draws * 8 / 256.0;
  double chi2 = 0.0;
  for (const int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 255 dof; mean 255, stddev ~22.6. Anything below 400 is unremarkable.
  EXPECT_LT(chi2, 400.0);
}

}  // namespace
}  // namespace mpte
