// Tests for the shared-memory SPSC ring primitive (src/ipc/shm_ring.*).
//
// The ring is exercised in-process: two ShmRing views (one producer, one
// consumer) over the same RingHeader + data region inside a ShmRegion,
// driven from separate threads where blocking matters. The non-PRIVATE
// futex protocol works identically between threads of one process and
// across fork, so these tests cover the exact code the multi-process
// backend runs — including the 2-thread hammer that TSan watches in CI.
#include "ipc/shm_ring.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "common/shm.hpp"
#include "ipc/frames.hpp"

namespace mpte::ipc {
namespace {

/// One ring (header + data) in real shared memory, with a producer view
/// and a consumer view the way the two processes of a channel see it.
struct RingFixture {
  ShmRegion region;
  ShmRing producer;
  ShmRing consumer;
  RingHeader* header = nullptr;
  std::uint8_t* data = nullptr;
  std::size_t capacity = 0;

  static RingFixture make(std::size_t capacity) {
    RingFixture f;
    auto region = ShmRegion::create(sizeof(RingHeader) + capacity,
                                    "mpte-test-ring");
    EXPECT_TRUE(region.ok()) << region.status().to_string();
    f.region = std::move(*region);
    f.header = new (f.region.data()) RingHeader();
    f.data = f.region.data() + sizeof(RingHeader);
    f.capacity = capacity;
    f.producer = ShmRing(f.header, f.data, capacity);
    f.consumer = ShmRing(f.header, f.data, capacity);
    return f;
  }
};

std::vector<std::uint8_t> pattern(std::size_t size, std::uint8_t seed) {
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<std::uint8_t>(seed + i * 131u);
  }
  return bytes;
}

TEST(ShmRing, WrapAroundAtOddFrameSizes) {
  auto f = RingFixture::make(1u << 10);
  // Odd, mutually-misaligned sizes force the write cursor across the
  // capacity boundary many times; every read must still see the bytes in
  // order and intact.
  const std::size_t sizes[] = {37, 101, 499, 13, 721, 255, 1};
  std::uint8_t seed = 1;
  for (int iter = 0; iter < 64; ++iter) {
    for (const std::size_t size : sizes) {
      const auto sent = pattern(size, seed);
      ASSERT_TRUE(
          f.producer.write({sent.data(), sent.size()}, -1, 2000).ok());
      std::vector<std::uint8_t> got(size);
      ASSERT_TRUE(f.consumer.read({got.data(), got.size()}, -1, 2000).ok());
      ASSERT_EQ(sent, got) << "size " << size << " iter " << iter;
      ++seed;
    }
  }
  EXPECT_GT(f.header->wraps.load(), 0u);
  EXPECT_EQ(f.header->bytes.load(),
            64u * (37 + 101 + 499 + 13 + 721 + 255 + 1));
  EXPECT_EQ(f.consumer.readable(), 0u);
}

TEST(ShmRing, FullRingBlocksProducerUntilConsumerDrains) {
  auto f = RingFixture::make(1u << 10);
  // 4x the capacity: the producer must block (counted in full_waits) and
  // stream the rest through as the consumer frees space.
  const auto sent = pattern(4u << 10, 7);
  Status write_status;
  std::thread producer([&] {
    write_status = f.producer.write({sent.data(), sent.size()}, -1, 10000);
  });
  // Let the producer actually hit the full ring before draining.
  while (f.header->full_waits.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::uint8_t> got(sent.size());
  ASSERT_TRUE(f.consumer.read({got.data(), got.size()}, -1, 10000).ok());
  producer.join();
  EXPECT_TRUE(write_status.ok()) << write_status.to_string();
  EXPECT_EQ(sent, got);
  EXPECT_GE(f.header->full_waits.load(), 1u);
}

TEST(ShmRing, CloseWakesBlockedReaderAsUnavailable) {
  auto f = RingFixture::make(1u << 10);
  Status read_status;
  std::uint8_t byte = 0;
  std::thread consumer([&] {
    read_status = f.consumer.read({&byte, 1}, -1, 10000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  f.producer.close();
  consumer.join();
  EXPECT_EQ(read_status.code(), StatusCode::kUnavailable)
      << read_status.to_string();
}

TEST(ShmRing, ClosedRingDrainsRemainingBytesThenFails) {
  auto f = RingFixture::make(1u << 10);
  const auto sent = pattern(64, 3);
  ASSERT_TRUE(f.producer.write({sent.data(), sent.size()}, -1, 2000).ok());
  f.producer.close();
  // Readers may drain what was written before the close...
  std::vector<std::uint8_t> got(sent.size());
  ASSERT_TRUE(f.consumer.read({got.data(), got.size()}, -1, 2000).ok());
  EXPECT_EQ(sent, got);
  // ...then see kUnavailable; writers fail immediately.
  std::uint8_t byte = 0;
  EXPECT_EQ(f.consumer.read({&byte, 1}, -1, 2000).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(f.producer.write({&byte, 1}, -1, 2000).code(),
            StatusCode::kUnavailable);
}

TEST(ShmRing, DeadPeerFdUnblocksWriterOnFullRing) {
  auto f = RingFixture::make(1u << 10);
  // Fill the ring so the writer must park, watching a socketpair whose
  // peer end is gone — the SIGKILLed-worker shape, where nobody ever
  // sets the closed flag.
  const auto fill = pattern(f.capacity, 9);
  ASSERT_TRUE(f.producer.write({fill.data(), fill.size()}, -1, 2000).ok());
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // peer "dies"
  std::uint8_t byte = 0;
  const Status status = f.producer.write({&byte, 1}, sv[0], 10000);
  ::close(sv[0]);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.to_string();
}

TEST(ShmRing, ReadTimesOutAsDeadlineExceeded) {
  auto f = RingFixture::make(1u << 10);
  std::uint8_t byte = 0;
  const Status status = f.consumer.read({&byte, 1}, -1, 30);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.to_string();
}

TEST(ShmRing, CorruptedEnvelopeOnRingIsRejectedByDecode) {
  auto f = RingFixture::make(1u << 12);
  // Hand-roll the channel's frame-on-ring protocol: u64 length marker,
  // then the checksummed envelope bytes.
  const mpc::Buffer encoded = encode_commit(41);
  const std::uint64_t marker = encoded.size();
  ASSERT_TRUE(f.producer
                  .write({reinterpret_cast<const std::uint8_t*>(&marker),
                          sizeof(marker)},
                         -1, 2000)
                  .ok());
  ASSERT_TRUE(f.producer.write({encoded.data(), encoded.size()}, -1, 2000)
                  .ok());
  // Flip one payload byte *in the shared ring data* — torn/corrupted
  // shared pages must not survive the digest check.
  f.data[sizeof(marker) + kEnvelopeHeaderBytes] ^= 0x40;
  std::uint64_t got_marker = 0;
  ASSERT_TRUE(f.consumer
                  .read({reinterpret_cast<std::uint8_t*>(&got_marker),
                         sizeof(got_marker)},
                        -1, 2000)
                  .ok());
  ASSERT_EQ(got_marker, marker);
  std::vector<std::uint8_t> envelope(got_marker);
  ASSERT_TRUE(
      f.consumer.read({envelope.data(), envelope.size()}, -1, 2000).ok());
  const auto decoded = decode_envelope({envelope.data(), envelope.size()});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // The same bytes un-corrupted decode fine (the failure above was the
  // flipped bit, not the harness).
  envelope[kEnvelopeHeaderBytes] ^= 0x40;
  const auto fixed = decode_envelope({envelope.data(), envelope.size()});
  ASSERT_TRUE(fixed.ok()) << fixed.status().to_string();
  EXPECT_EQ(fixed->kind, FrameKind::kCommit);
  EXPECT_EQ(fixed->round, 41u);
}

TEST(ShmRing, TwoThreadHammer) {
  // A small ring + many variable-size messages keeps both sides cycling
  // through every path: wrap, full-wait, empty-wait, futex park/wake.
  // TSan runs this in CI; any missing happens-before edge in the cursor
  // protocol shows up here.
  auto f = RingFixture::make(1u << 12);
  constexpr std::size_t kMessages = 2000;
  std::uint32_t rng = 0x9e3779b9u;
  std::vector<std::size_t> sizes(kMessages);
  for (auto& size : sizes) {
    rng = rng * 1664525u + 1013904223u;
    size = 1 + (rng >> 20) % 700;  // 1..700 bytes, crosses wrap constantly
  }
  Status producer_status, consumer_status;
  std::thread producer([&] {
    for (std::size_t i = 0; i < kMessages; ++i) {
      const auto msg = pattern(sizes[i], static_cast<std::uint8_t>(i));
      producer_status = f.producer.write({msg.data(), msg.size()}, -1, 30000);
      if (!producer_status.ok()) return;
    }
  });
  std::thread consumer([&] {
    for (std::size_t i = 0; i < kMessages; ++i) {
      std::vector<std::uint8_t> got(sizes[i]);
      consumer_status = f.consumer.read({got.data(), got.size()}, -1, 30000);
      if (!consumer_status.ok()) return;
      const auto want = pattern(sizes[i], static_cast<std::uint8_t>(i));
      if (got != want) {
        consumer_status = Status(StatusCode::kInternal,
                                 "payload mismatch at message " +
                                     std::to_string(i));
        return;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(producer_status.ok()) << producer_status.to_string();
  EXPECT_TRUE(consumer_status.ok()) << consumer_status.to_string();
  std::size_t total = 0;
  for (const auto size : sizes) total += size;
  EXPECT_EQ(f.header->bytes.load(), total);
  EXPECT_EQ(f.consumer.readable(), 0u);
}

TEST(ShmChannel, RoundTripsFramesAndFallsBackWhenOversized) {
  // Channel-level check over a real pre-"fork" channel driven from two
  // threads: one bound as coordinator, one as worker, exactly like the
  // two processes would be. A tiny ring forces the oversized result
  // frame onto the socketpair fallback path (marker 0), interleaved with
  // ring-sized frames — order must hold and counters must add up.
  ShmChannel::Config config;
  config.ring_bytes = 1u << 10;
  config.arena_bytes = 1u << 12;
  auto created = ShmChannel::create(config);
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  // In a real spawn the worker's end is the same region seen after fork;
  // here the "worker" is this thread speaking the raw marker+envelope
  // protocol directly over the channel's rings (Transport-level
  // cross-process equivalence is test_ipc's job).
  ShmChannel channel = std::move(*created);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  channel.bind(Side::kCoordinator, sv[0]);

  // Worker-side raw view: the ring the coordinator produces on.
  ShmRing& to_worker = channel.send_ring();

  // Frame 1: small step frame — fits the ring.
  StepFrame step;
  step.rank = 2;
  step.round = 5;
  step.step_name = "test/step";
  ASSERT_TRUE(channel.send_frame(encode_step(step)).ok());
  // Frame 2: oversized (payload > ring capacity) — must fall back.
  ResultFrame result;
  result.rank = 2;
  result.round = 5;
  result.fragments.resize(1);
  StoreDelta delta;
  delta.key = "big";
  delta.present = true;
  delta.blob = mpc::Buffer::copy_of(pattern(8192, 5));
  result.store_delta.push_back(std::move(delta));
  ASSERT_TRUE(channel.send_frame(encode_result(result)).ok());

  // Scripted worker: drain both frames in order through the raw
  // protocol (marker, then ring bytes or socketpair).
  auto read_exact = [&](std::span<std::uint8_t> out) {
    ASSERT_TRUE(to_worker.read(out, -1, 5000).ok());
  };
  std::uint64_t marker = 0;
  read_exact({reinterpret_cast<std::uint8_t*>(&marker), sizeof(marker)});
  ASSERT_GT(marker, 0u);
  std::vector<std::uint8_t> envelope(marker);
  read_exact({envelope.data(), envelope.size()});
  auto first = decode_envelope({envelope.data(), envelope.size()});
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first->kind, FrameKind::kStep);
  EXPECT_EQ(first->step.step_name, "test/step");

  read_exact({reinterpret_cast<std::uint8_t*>(&marker), sizeof(marker)});
  EXPECT_EQ(marker, 0u) << "oversized frame should announce fallback";
  auto second = read_frame(sv[1], 5000);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second->kind, FrameKind::kResult);
  ASSERT_EQ(second->result.store_delta.size(), 1u);
  EXPECT_EQ(second->result.store_delta[0].blob.size(), 8192u);

  const RingCounters counters = channel.drain_counters();
  EXPECT_EQ(counters.fallback_frames, 1u);
  EXPECT_GT(counters.shm_bytes, 0u);
  // A second drain reports only what happened since (nothing).
  const RingCounters again = channel.drain_counters();
  EXPECT_EQ(again.fallback_frames, 0u);
  EXPECT_EQ(again.shm_bytes, 0u);
  channel.close();
  ::close(sv[0]);
  ::close(sv[1]);
}

}  // namespace
}  // namespace mpte::ipc
