#include "geometry/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/bounding_box.hpp"

namespace mpte {
namespace {

TEST(Generators, UniformCubeInBounds) {
  const PointSet points = generate_uniform_cube(500, 4, 7.0, 1);
  EXPECT_EQ(points.size(), 500u);
  EXPECT_EQ(points.dim(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.dim(); ++j) {
      EXPECT_GE(points.coord(i, j), 0.0);
      EXPECT_LE(points.coord(i, j), 7.0);
    }
  }
}

TEST(Generators, UniformCubeDeterministicBySeed) {
  const PointSet a = generate_uniform_cube(50, 3, 1.0, 9);
  const PointSet b = generate_uniform_cube(50, 3, 1.0, 9);
  const PointSet c = generate_uniform_cube(50, 3, 1.0, 10);
  EXPECT_EQ(a.raw(), b.raw());
  EXPECT_NE(a.raw(), c.raw());
}

TEST(Generators, GaussianClustersConcentrate) {
  const PointSet points =
      generate_gaussian_clusters(400, 3, 4, 100.0, 0.5, 2);
  EXPECT_EQ(points.size(), 400u);
  // With stddev 0.5 and centers spread over [0,100]^3, the nearest-cluster
  // structure shows up as most points being within ~4 units of some other
  // point but the overall spread being much larger.
  const BoundingBox box = BoundingBox::of(points);
  EXPECT_GT(box.width(), 20.0);
}

TEST(Generators, SubspacePointsHaveLowRank) {
  const std::size_t n = 60, d = 20, k = 2;
  const PointSet points = generate_subspace(n, d, k, 5.0, 0.0, 3);
  // Every point is a combination of k basis vectors: verify via rank of
  // the Gram matrix against 4 random directions being (numerically) rank
  // k. Cheap proxy: distances from each point to the span of the first
  // k points should be ~0... instead check that k+1 generic points are
  // affinely dependent: volume of the simplex they span (via Gram
  // determinant of differences) is ~0 for k+1+1 points.
  // Use points 0..k+1: differences relative to point 0.
  std::vector<std::vector<double>> diff;
  for (std::size_t i = 1; i <= k + 1; ++i) {
    std::vector<double> v(d);
    for (std::size_t j = 0; j < d; ++j) {
      v[j] = points.coord(i, j) - points.coord(0, j);
    }
    diff.push_back(std::move(v));
  }
  // Gram matrix of k+1 difference vectors has rank <= k => det ~ 0.
  const std::size_t m = diff.size();
  std::vector<std::vector<double>> gram(m, std::vector<double>(m, 0.0));
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      for (std::size_t j = 0; j < d; ++j) gram[a][b] += diff[a][j] * diff[b][j];
    }
  }
  // Gaussian elimination determinant.
  double det = 1.0;
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < m; ++row) {
      if (std::abs(gram[row][col]) > std::abs(gram[pivot][col])) pivot = row;
    }
    std::swap(gram[col], gram[pivot]);
    if (std::abs(gram[col][col]) < 1e-9) {
      det = 0.0;
      break;
    }
    det *= gram[col][col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double f = gram[row][col] / gram[col][col];
      for (std::size_t j = col; j < m; ++j) gram[row][j] -= f * gram[col][j];
    }
  }
  EXPECT_NEAR(det, 0.0, 1e-6);
}

TEST(Generators, SubspaceNoiseRaisesRank) {
  const PointSet points = generate_subspace(10, 8, 1, 5.0, 0.1, 4);
  EXPECT_EQ(points.dim(), 8u);
  // Just a smoke check that noise doesn't blow up coordinates.
  const BoundingBox box = BoundingBox::of(points);
  EXPECT_LT(box.width(), 20.0);
}

TEST(Generators, LatticeIsRegular) {
  const PointSet points = generate_lattice(27, 3, 2.0);
  EXPECT_EQ(points.size(), 27u);
  // First point is the origin; second advances the first coordinate.
  EXPECT_EQ(points.coord(0, 0), 0.0);
  EXPECT_EQ(points.coord(1, 0), 2.0);
  EXPECT_EQ(points.coord(1, 1), 0.0);
  // All coordinates are multiples of the step.
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double q = points.coord(i, j) / 2.0;
      EXPECT_NEAR(q, std::round(q), 1e-12);
    }
  }
  // Distinct points.
  const auto ext = pairwise_distance_extremes(points);
  EXPECT_GE(ext.min, 2.0 - 1e-9);
}

TEST(Generators, TwoBlobsSeparated) {
  const PointSet points = generate_two_blobs(200, 4, 50.0, 0.5, 5);
  double mean_first = 0.0, mean_second = 0.0;
  for (std::size_t i = 0; i < 100; ++i) mean_first += points.coord(i, 0);
  for (std::size_t i = 100; i < 200; ++i) mean_second += points.coord(i, 0);
  EXPECT_NEAR(mean_first / 100, 0.0, 1.0);
  EXPECT_NEAR(mean_second / 100, 50.0, 1.0);
}

TEST(Generators, PairAtDistanceExact) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const PointSet pair = generate_pair_at_distance(6, 100.0, 12.5, seed);
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_NEAR(l2_distance(pair[0], pair[1]), 12.5, 1e-9);
    const BoundingBox box({0, 0, 0, 0, 0, 0}, {100, 100, 100, 100, 100, 100});
    EXPECT_TRUE(box.contains(pair[0]));
    EXPECT_TRUE(box.contains(pair[1]));
  }
}

TEST(Generators, PairAtDistanceTooLargeThrows) {
  EXPECT_THROW(generate_pair_at_distance(2, 1.0, 5.0, 1), MpteError);
}

}  // namespace
}  // namespace mpte
