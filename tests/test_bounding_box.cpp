#include "geometry/bounding_box.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.hpp"
#include "geometry/generators.hpp"

namespace mpte {
namespace {

TEST(BoundingBox, OfComputesTightBounds) {
  PointSet points(3, 2, {0, 5, 2, -1, 1, 3});
  const BoundingBox box = BoundingBox::of(points);
  EXPECT_EQ(box.lo(), (std::vector<double>{0, -1}));
  EXPECT_EQ(box.hi(), (std::vector<double>{2, 5}));
  EXPECT_EQ(box.width(), 6.0);
  EXPECT_NEAR(box.diagonal(), std::sqrt(4.0 + 36.0), 1e-12);
}

TEST(BoundingBox, EmptySetThrows) {
  EXPECT_THROW(BoundingBox::of(PointSet{}), MpteError);
}

TEST(BoundingBox, MismatchedLoHiThrows) {
  EXPECT_THROW(BoundingBox({0.0}, {1.0, 2.0}), MpteError);
  EXPECT_THROW(BoundingBox({2.0}, {1.0}), MpteError);
}

TEST(BoundingBox, ContainsIsInclusive) {
  const BoundingBox box({0.0, 0.0}, {1.0, 1.0});
  const double inside[] = {0.5, 0.5};
  const double corner[] = {1.0, 0.0};
  const double outside[] = {1.0, 1.5};
  EXPECT_TRUE(box.contains(inside));
  EXPECT_TRUE(box.contains(corner));
  EXPECT_FALSE(box.contains(outside));
}

TEST(BoundingBox, ExpandedGrowsBothSides) {
  const BoundingBox box({0.0}, {1.0});
  const BoundingBox bigger = box.expanded(0.5);
  EXPECT_EQ(bigger.lo()[0], -0.5);
  EXPECT_EQ(bigger.hi()[0], 1.5);
  EXPECT_EQ(bigger.width(), 2.0);
}

TEST(BoundingBox, ContainsAllGeneratedPoints) {
  const PointSet points = generate_uniform_cube(200, 5, 10.0, 42);
  const BoundingBox box = BoundingBox::of(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(box.contains(points[i]));
  }
  EXPECT_LE(box.width(), 10.0);
}

TEST(BoundingBox, DegeneratePointBox) {
  PointSet points(1, 3, {1.0, 2.0, 3.0});
  const BoundingBox box = BoundingBox::of(points);
  EXPECT_EQ(box.width(), 0.0);
  EXPECT_EQ(box.diagonal(), 0.0);
  EXPECT_TRUE(box.contains(points[0]));
}

}  // namespace
}  // namespace mpte
