#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mpte {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Serializer s;
  s.write<std::uint64_t>(0xdeadbeefcafeull);
  s.write<double>(3.25);
  s.write<std::int32_t>(-7);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.read<std::uint64_t>(), 0xdeadbeefcafeull);
  EXPECT_EQ(d.read<double>(), 3.25);
  EXPECT_EQ(d.read<std::int32_t>(), -7);
  EXPECT_TRUE(d.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  Serializer s;
  const std::vector<double> values{1.0, -2.5, 1e-300, 1e300};
  s.write_vector(values);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.read_vector<double>(), values);
}

TEST(Serialize, EmptyVectorRoundTrip) {
  Serializer s;
  s.write_vector(std::vector<std::uint64_t>{});
  Deserializer d(s.bytes());
  EXPECT_TRUE(d.read_vector<std::uint64_t>().empty());
  EXPECT_TRUE(d.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  Serializer s;
  s.write_string("hello");
  s.write_string("");
  s.write_string(std::string("\0binary\0", 8));
  Deserializer d(s.bytes());
  EXPECT_EQ(d.read_string(), "hello");
  EXPECT_EQ(d.read_string(), "");
  EXPECT_EQ(d.read_string(), std::string("\0binary\0", 8));
}

TEST(Serialize, MixedSequenceRoundTrip) {
  Serializer s;
  s.write<std::uint32_t>(99);
  s.write_vector(std::vector<std::int64_t>{-1, 0, 1});
  s.write_string("tail");
  Deserializer d(s.bytes());
  EXPECT_EQ(d.read<std::uint32_t>(), 99u);
  EXPECT_EQ((d.read_vector<std::int64_t>()),
            (std::vector<std::int64_t>{-1, 0, 1}));
  EXPECT_EQ(d.read_string(), "tail");
  EXPECT_TRUE(d.exhausted());
}

TEST(Serialize, SizeTracksBytes) {
  Serializer s;
  EXPECT_EQ(s.size(), 0u);
  s.write<std::uint64_t>(1);
  EXPECT_EQ(s.size(), 8u);
  s.write_vector(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(s.size(), 8u + 8u + 16u);
}

TEST(Serialize, TakeMovesBuffer) {
  Serializer s;
  s.write<std::uint64_t>(5);
  auto bytes = s.take();
  EXPECT_EQ(bytes.size(), 8u);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Deserialize, OverreadThrows) {
  Serializer s;
  s.write<std::uint32_t>(1);
  Deserializer d(s.bytes());
  (void)d.read<std::uint32_t>();
  EXPECT_THROW((void)d.read<std::uint32_t>(), MpteError);
}

TEST(Deserialize, TruncatedVectorThrows) {
  Serializer s;
  s.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
  Deserializer d(s.bytes());
  EXPECT_THROW((void)d.read_vector<double>(), MpteError);
}

TEST(Deserialize, RemainingCountsDown) {
  Serializer s;
  s.write<std::uint64_t>(1);
  s.write<std::uint64_t>(2);
  Deserializer d(s.bytes());
  EXPECT_EQ(d.remaining(), 16u);
  (void)d.read<std::uint64_t>();
  EXPECT_EQ(d.remaining(), 8u);
}

struct PodRecord {
  std::uint64_t a;
  std::uint32_t b;
  std::uint32_t c;
};

TEST(Serialize, PodStructRoundTrip) {
  Serializer s;
  s.write(PodRecord{1, 2, 3});
  s.write_vector(std::vector<PodRecord>{{4, 5, 6}, {7, 8, 9}});
  Deserializer d(s.bytes());
  const auto r = d.read<PodRecord>();
  EXPECT_EQ(r.a, 1u);
  EXPECT_EQ(r.b, 2u);
  EXPECT_EQ(r.c, 3u);
  const auto v = d.read_vector<PodRecord>();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1].c, 9u);
}

}  // namespace
}  // namespace mpte
