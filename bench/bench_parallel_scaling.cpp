// Wall-clock scaling of the shared-memory parallel runtime (mpte::par).
//
// Unlike the other benches (which measure algorithmic quantities), this one
// measures *time*: for cluster round execution and for each parallelized
// point kernel, it times the 1-thread path and the T-thread path over the
// same input and reports both plus the speedup. Run on a multi-core host;
// on a single hardware thread the "speedup" column measures only pool
// overhead (oversubscribed software threads cannot beat one core).
//
// Counters per row (threads = the benchmark Arg):
//   serial_ms   best-of-reps wall-clock of the 1-thread path
//   par_ms      best-of-reps wall-clock at `threads`
//   speedup     serial_ms / par_ms
//   hw_threads  hardware concurrency of this host, for reading the table
//
// The BM_Simd* benches at the bottom sweep the other axis — the
// dispatched kernel backend at a fixed single thread — reporting per-
// backend GB/s and speedup-vs-scalar, and writing the BENCH_simd.json /
// BENCH_simd.metrics.prom artifacts (bench/simd_bench_util.hpp).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "geometry/generators.hpp"
#include "mpc/cluster.hpp"
#include "partition/ball_partition.hpp"
#include "partition/grid_partition.hpp"
#include "simd_bench_util.hpp"
#include "transform/dense_jl.hpp"
#include "transform/sparse_jl.hpp"
#include "transform/walsh_hadamard.hpp"
#include "tree/distortion.hpp"
#include "core/embedder.hpp"

namespace mpte::bench {
namespace {

/// Best-of-`reps` wall-clock milliseconds of fn().
template <typename Fn>
double best_ms(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.milliseconds());
  }
  return best;
}

/// Times `fn` at 1 thread and at `threads` (via the process default, which
/// every kernel call site resolves), reporting the standard counters.
template <typename Fn>
void report_scaling(benchmark::State& state, std::size_t threads, Fn&& fn) {
  par::set_default_threads(1);
  const double serial_ms = best_ms(fn);
  par::set_default_threads(threads);
  const double par_ms = best_ms(fn);
  par::set_default_threads(0);
  state.counters["serial_ms"] = serial_ms;
  state.counters["par_ms"] = par_ms;
  state.counters["speedup"] = par_ms > 0.0 ? serial_ms / par_ms : 0.0;
  state.counters["hw_threads"] =
      static_cast<double>(par::hardware_threads());
}

/// Acceptance workload: Cluster::run_round on a 64-machine pipeline whose
/// per-machine step does real local work (an FWHT over a local buffer),
/// the shape of every compute round in Algorithm 2.
void BM_ClusterRoundScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kMachines = 64;
  constexpr std::size_t kLocalDim = 1 << 12;
  constexpr std::size_t kRounds = 8;
  for (auto _ : state) {
    auto run = [&](std::size_t num_threads) {
      mpc::ClusterConfig config;
      config.num_machines = kMachines;
      config.local_memory_bytes = 1 << 22;
      config.enforce_limits = false;
      config.num_threads = num_threads;
      mpc::Cluster cluster(config);
      for (mpc::MachineId id = 0; id < kMachines; ++id) {
        std::vector<double> local(kLocalDim);
        for (std::size_t i = 0; i < kLocalDim; ++i) {
          local[i] = static_cast<double>((id + 1) * (i + 1) % 97);
        }
        cluster.store(id).set_vector("w", local);
      }
      for (std::size_t round = 0; round < kRounds; ++round) {
        cluster.run_round([](mpc::MachineContext& ctx) {
          auto local = ctx.store().get_vector<double>("w");
          fwht_normalized(local);
          fwht_normalized(local);  // involution: keeps values bounded
          ctx.store().set_vector("w", local);
        });
      }
    };
    par::set_default_threads(0);
    const double serial_ms = best_ms([&] { run(1); });
    const double par_ms = best_ms([&] { run(threads); });
    state.counters["serial_ms"] = serial_ms;
    state.counters["par_ms"] = par_ms;
    state.counters["speedup"] = par_ms > 0.0 ? serial_ms / par_ms : 0.0;
    state.counters["hw_threads"] =
        static_cast<double>(par::hardware_threads());
  }
}
BENCHMARK(BM_ClusterRoundScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Acceptance workload: fwht_points on n = 20k, d = 1024.
void BM_FwhtPointsScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(20000, 1024, 10.0, 7);
  for (auto _ : state) {
    report_scaling(state, threads, [&] {
      benchmark::DoNotOptimize(fwht_points(points));
    });
  }
}
BENCHMARK(BM_FwhtPointsScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DenseJlScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(4000, 512, 10.0, 11);
  const DenseJl jl(512, 64, 23);
  for (auto _ : state) {
    report_scaling(state, threads,
                   [&] { benchmark::DoNotOptimize(jl.transform(points)); });
  }
}
BENCHMARK(BM_DenseJlScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SparseJlScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(20000, 512, 10.0, 13);
  const SparseJl jl(512, 64, 29);
  for (auto _ : state) {
    report_scaling(state, threads,
                   [&] { benchmark::DoNotOptimize(jl.transform(points)); });
  }
}
BENCHMARK(BM_SparseJlScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BallPartitionScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(100000, 12, 8.0, 17);
  const BallGrids grids(12, 2.0, 64, 31);
  for (auto _ : state) {
    report_scaling(state, threads, [&] {
      benchmark::DoNotOptimize(ball_partition(points, grids));
    });
  }
}
BENCHMARK(BM_BallPartitionScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GridPartitionScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(200000, 16, 8.0, 19);
  const ShiftedGrid grid(16, 1.5, 37);
  for (auto _ : state) {
    report_scaling(state, threads, [&] {
      benchmark::DoNotOptimize(grid_partition(points, grid));
    });
  }
}
BENCHMARK(BM_GridPartitionScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ExpectedDistortionScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(600, 8, 20.0, 3);
  EmbedOptions options;
  options.delta = 1024;
  std::vector<Hst> forest;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    options.seed = s;
    auto result = embed(points, options);
    if (result.ok()) forest.push_back(std::move(result->tree));
  }
  for (auto _ : state) {
    report_scaling(state, threads, [&] {
      benchmark::DoNotOptimize(
          measure_expected_distortion(forest, points, 120000, 5));
    });
  }
}
BENCHMARK(BM_ExpectedDistortionScaling)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// SIMD backend sweeps: single thread, every compiled-in backend, per-kernel
// GB/s and speedup over the scalar reference. The acceptance targets live
// here: fwht_points and the batched squared-L2 path must beat scalar by
// >= 2x on an AVX2 host.

void BM_SimdFwhtPoints(benchmark::State& state) {
  // Cache-resident batch, repeated: this host streams DRAM at ~23 GB/s,
  // so a one-shot multi-MB batch measures the memory bus, not the
  // butterflies. The batch is also kept under the glibc mmap threshold —
  // fwht_points allocates its output per call, and a larger batch would
  // spend backend-independent time in mmap/page faults every iteration.
  constexpr std::size_t kN = 2, kD = 4096, kReps = 800;
  const PointSet points = generate_uniform_cube(kN, kD, 10.0, 7);
  // log2(d) butterfly passes, each touching every element twice (read +
  // write), plus the normalization pass.
  const double bytes_per_call =
      static_cast<double>(kReps * kN * kD * sizeof(double)) *
      (2.0 * 12.0 + 2.0);
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "fwht_points", bytes_per_call, [&] {
      for (std::size_t r = 0; r < kReps; ++r) {
        benchmark::DoNotOptimize(fwht_points(points));
      }
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdFwhtPoints)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SimdL2Batch(benchmark::State& state) {
  constexpr std::size_t kN = 1200, kD = 256;
  const PointSet points = generate_uniform_cube(kN, kD, 10.0, 9);
  const double bytes_per_call =
      static_cast<double>(kN) * static_cast<double>(kN - 1) / 2.0 * 2.0 *
      static_cast<double>(kD * sizeof(double));
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "l2sq_batch", bytes_per_call, [&] {
      benchmark::DoNotOptimize(pairwise_distance_extremes(points));
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdL2Batch)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SimdDenseJl(benchmark::State& state) {
  constexpr std::size_t kN = 2000, kIn = 512, kOut = 64;
  const PointSet points = generate_uniform_cube(kN, kIn, 10.0, 11);
  const DenseJl jl(kIn, kOut, 23);
  const double bytes_per_call =
      static_cast<double>(kN * kOut * kIn * sizeof(double));
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "dense_jl_gemv", bytes_per_call, [&] {
      benchmark::DoNotOptimize(jl.transform(points));
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdDenseJl)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SimdSparseJl(benchmark::State& state) {
  constexpr std::size_t kN = 8000, kIn = 512, kOut = 64;
  const PointSet points = generate_uniform_cube(kN, kIn, 10.0, 13);
  const SparseJl jl(kIn, kOut, 29);
  // Per nonzero: the value plus the gathered coordinate.
  const double bytes_per_call =
      static_cast<double>(kN * jl.nonzeros()) * 2.0 * sizeof(double);
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "sparse_jl_csr", bytes_per_call, [&] {
      benchmark::DoNotOptimize(jl.transform(points));
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdSparseJl)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SimdBallAssign(benchmark::State& state) {
  constexpr std::size_t kN = 50000, kD = 12, kGrids = 64;
  const PointSet points = generate_uniform_cube(kN, kD, 8.0, 17);
  const BallGrids grids(kD, 2.0, kGrids, 31);
  // Upper bound: every grid's shift row for every dimension.
  const double bytes_per_call =
      static_cast<double>(kN * kD * kGrids * sizeof(double));
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "ball_first_cover", bytes_per_call, [&] {
      benchmark::DoNotOptimize(ball_partition(points, grids));
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdBallAssign)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SimdGridPartition(benchmark::State& state) {
  constexpr std::size_t kN = 100000, kD = 16;
  const PointSet points = generate_uniform_cube(kN, kD, 8.0, 19);
  const ShiftedGrid grid(kD, 1.5, 37);
  const double bytes_per_call =
      static_cast<double>(kN * kD * sizeof(double)) * 3.0;
  par::set_default_threads(1);
  for (auto _ : state) {
    simd_backend_sweep(state, "lattice_floor", bytes_per_call, [&] {
      benchmark::DoNotOptimize(grid_partition(points, grid));
    });
  }
  par::set_default_threads(0);
}
BENCHMARK(BM_SimdGridPartition)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
