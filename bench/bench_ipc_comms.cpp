// Transport cost of the multi-process backend vs the in-process simulator.
//
// One benchmark round is a representative comms-heavy step: every machine
// rewrites one store blob and sends a fixed payload to every peer
// (all-to-all), so a round moves M*M*payload message bytes plus M store
// deltas. The in-process rows price the simulator's refcounted delivery;
// the proc-fork rows add the pre-persistent per-round costs — fork,
// serialize, transport hop, barrier — and the proc-persistent rows price
// the kStep protocol (resident workers, dirty-key patches) against them,
// each crossed with the transport axis (socketpair vs shared-memory
// ring; see docs/ipc-transport.md), at M in {4, 8, 16}. Every row runs
// the same registered named step so the comparison isolates the
// substrate, not the step body.
//
// Artifacts, following the BENCH_simd convention:
//   BENCH_ipc.json          rows of {backend, machines, round_ms,
//                           rounds_per_s, mb_per_s}
//   BENCH_ipc.metrics.prom  the same numbers as Prometheus gauges
#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/serialize.hpp"
#include "common/timer.hpp"
#include "mpc/cluster.hpp"
#include "mpc/step.hpp"
#include "obs/metrics.hpp"

namespace mpte::bench {
namespace {

constexpr std::size_t kPayloadBytes = 4096;

/// The all-to-all round as a registered step: persistent workers resolve
/// it by name; fork and inproc rows host the identical factory product.
mpc::Step make_all_to_all(mpc::StepParams params) {
  Deserializer d(params);
  const auto payload_bytes = d.read<std::uint64_t>();
  const auto round = d.read<std::uint64_t>();
  return [payload_bytes, round](mpc::MachineContext& ctx) {
    ctx.store().set_blob("state",
                         std::vector<std::uint8_t>(
                             payload_bytes, static_cast<std::uint8_t>(round)));
    const std::vector<std::uint8_t> payload(payload_bytes, 0x5a);
    for (mpc::MachineId to = 0; to < ctx.num_machines(); ++to) {
      ctx.send(to, payload, "bench/all-to-all");
    }
  };
}

const mpc::RegisterStep kRegAllToAll{"bench/all-to-all", make_all_to_all};

mpc::StepSpec all_to_all_spec(std::uint64_t round) {
  Serializer s;
  s.write(static_cast<std::uint64_t>(kPayloadBytes));
  s.write(round);
  return mpc::StepSpec("bench/all-to-all", std::move(s));
}

struct IpcRow {
  std::string backend;
  std::size_t machines = 0;
  double round_ms = 0.0;
  double rounds_per_s = 0.0;
  double mb_per_s = 0.0;
};

/// Process-wide accumulator behind the BENCH_ipc artifacts (the
/// SimdBenchRecorder pattern: replace-by-key, rewrite after every sweep).
class IpcBenchRecorder {
 public:
  static IpcBenchRecorder& global() {
    static IpcBenchRecorder recorder;
    return recorder;
  }

  void add(IpcRow row) {
    std::erase_if(rows_, [&row](const IpcRow& r) {
      return r.backend == row.backend && r.machines == row.machines;
    });
    rows_.push_back(std::move(row));
  }

  void write_artifacts() const {
    std::ostringstream json;
    json << "{\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& r = rows_[i];
      json << (i == 0 ? "\n" : ",\n");
      json << "    {\"backend\": \"" << r.backend
           << "\", \"machines\": " << r.machines
           << ", \"round_ms\": " << r.round_ms
           << ", \"rounds_per_s\": " << r.rounds_per_s
           << ", \"mb_per_s\": " << r.mb_per_s << "}";
    }
    json << "\n  ]\n}\n";

    obs::Registry registry;
    for (const auto& r : rows_) {
      const obs::Labels labels = {{"backend", r.backend},
                                  {"machines", std::to_string(r.machines)}};
      registry
          .gauge("mpte_ipc_bench_round_ms",
                 "Wall-clock milliseconds per all-to-all round", labels)
          .set(r.round_ms);
      registry
          .gauge("mpte_ipc_bench_rounds_per_s",
                 "All-to-all rounds committed per second", labels)
          .set(r.rounds_per_s);
      registry
          .gauge("mpte_ipc_bench_mb_per_s",
                 "Message megabytes delivered per second", labels)
          .set(r.mb_per_s);
    }
    const std::string prom = registry.prometheus_text();
    const auto bytes = [](const std::string& text) {
      return std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    };
    (void)write_file_atomic("BENCH_ipc.json", bytes(json.str()));
    (void)write_file_atomic("BENCH_ipc.metrics.prom", bytes(prom));
  }

 private:
  std::vector<IpcRow> rows_;
};

/// The proc benchmark axis: worker provisioning x transport substrate.
/// Mode 0 is the in-process baseline; 1-2 ride the socketpair, 3-4 the
/// shared-memory ring (the default transport).
struct ProcMode {
  const char* name;
  mpc::Backend backend;
  mpc::IpcOptions::WorkerMode workers;
  mpc::IpcOptions::Transport transport;
};

constexpr ProcMode kModes[] = {
    {"inproc", mpc::Backend::kInProcess,
     mpc::IpcOptions::WorkerMode::kPersistent,
     mpc::IpcOptions::Transport::kShmRing},
    {"proc-fork-socketpair", mpc::Backend::kMultiProcess,
     mpc::IpcOptions::WorkerMode::kForkPerRound,
     mpc::IpcOptions::Transport::kSocketpair},
    {"proc-persistent-socketpair", mpc::Backend::kMultiProcess,
     mpc::IpcOptions::WorkerMode::kPersistent,
     mpc::IpcOptions::Transport::kSocketpair},
    {"proc-fork-shm", mpc::Backend::kMultiProcess,
     mpc::IpcOptions::WorkerMode::kForkPerRound,
     mpc::IpcOptions::Transport::kShmRing},
    {"proc-persistent-shm", mpc::Backend::kMultiProcess,
     mpc::IpcOptions::WorkerMode::kPersistent,
     mpc::IpcOptions::Transport::kShmRing},
};

void BM_AllToAllRound(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const ProcMode& mode = kModes[state.range(1)];

  mpc::ClusterConfig config;
  config.num_machines = machines;
  config.local_memory_bytes = 1 << 22;
  config.backend = mode.backend;
  config.ipc.workers = mode.workers;
  config.ipc.transport = mode.transport;
  mpc::Cluster cluster(config);

  const double bytes_per_round =
      static_cast<double>(machines * machines * kPayloadBytes);

  double total_ms = 0.0;
  std::uint64_t round = 0;
  for (auto _ : state) {
    const Timer timer;
    cluster.run_round(all_to_all_spec(round), "bench");
    total_ms += timer.milliseconds();
    ++round;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      bytes_per_round * static_cast<double>(state.iterations())));

  IpcRow row;
  row.backend = mode.name;
  row.machines = machines;
  row.round_ms =
      state.iterations() > 0
          ? total_ms / static_cast<double>(state.iterations())
          : 0.0;
  row.rounds_per_s = row.round_ms > 0.0 ? 1000.0 / row.round_ms : 0.0;
  row.mb_per_s = row.round_ms > 0.0
                     ? bytes_per_round / (row.round_ms * 1e3)
                     : 0.0;
  state.counters["round_ms"] = row.round_ms;
  state.counters["rounds_per_s"] = row.rounds_per_s;
  state.counters["mb_per_s"] = row.mb_per_s;
  IpcBenchRecorder::global().add(std::move(row));
  IpcBenchRecorder::global().write_artifacts();
}

BENCHMARK(BM_AllToAllRound)
    ->ArgNames({"machines", "mode"})
    ->ArgsProduct({{4, 8, 16}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
