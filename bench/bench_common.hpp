// Shared helpers for the experiment benches (see DESIGN.md §4).
//
// Conventions: every bench registers with ->Iterations(1) (we measure
// algorithmic quantities — distortion, rounds, bytes — not wall-clock
// noise) and reports its experiment metrics through benchmark counters so
// the table each binary prints *is* the experiment's result table.
#pragma once

#include <benchmark/benchmark.h>

#include <vector>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"

namespace mpte::bench {

/// Builds an ensemble of `trees` embeddings of `points` with consecutive
/// seeds, for expected-distortion measurement.
inline std::vector<Hst> build_forest(const PointSet& points,
                                     const EmbedOptions& base,
                                     std::size_t trees,
                                     std::uint64_t seed0 = 1000) {
  std::vector<Hst> forest;
  forest.reserve(trees);
  for (std::size_t t = 0; t < trees; ++t) {
    EmbedOptions options = base;
    options.seed = seed0 + t;
    auto result = embed(points, options);
    if (!result.ok()) {
      // Coverage failures at bench scale indicate misconfigured U; skip
      // the tree rather than abort the whole table.
      continue;
    }
    forest.push_back(std::move(result->tree));
  }
  return forest;
}

/// Reports ensemble distortion stats as counters on `state`.
inline void report_distortion(benchmark::State& state,
                              const std::vector<Hst>& forest,
                              const PointSet& points,
                              std::size_t max_pairs = 4000) {
  const auto stats =
      measure_expected_distortion(forest, points, max_pairs, 99);
  state.counters["exp_distortion_max"] = stats.max_expected_ratio;
  state.counters["exp_distortion_mean"] = stats.mean_expected_ratio;
  state.counters["min_ratio"] = stats.min_single_ratio;  // >= 1: domination
  state.counters["trees"] = static_cast<double>(stats.trees);
}

}  // namespace mpte::bench
