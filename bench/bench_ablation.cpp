// Ablations of the design choices DESIGN.md calls out.
//
//   * A1 — partition method behind tree-EMD: the grid hierarchy is exactly
//     the quadtree estimator (the Chen et al. [28] comparator the paper
//     discusses); the hybrid hierarchy should match or beat its average
//     ratio at equal settings, with ball (r = 1) best.
//   * A2 — FJLT on/off for high-dimensional inputs: with the transform the
//     distortion stays near the low-dimensional regime at a fraction of
//     the per-level work; without it (hybrid directly on R^d) the bucket
//     count must rise to keep ball coverage tractable, degrading
//     distortion toward the grid baseline.
//   * A3 — number of trees averaged: expected distortion is a property of
//     the tree *distribution*; the max-pair ratio improves markedly from
//     1 tree to a small ensemble (the standard embedding trick).
#include "bench_common.hpp"

#include "apps/emd.hpp"
#include "geometry/quantize.hpp"

namespace mpte::bench {
namespace {

void BM_AblationEmdMethod(benchmark::State& state,
                          PartitionMethod method) {
  const std::size_t half = 48;
  const PointSet a = generate_uniform_cube(half, 4, 50.0, 3);
  const PointSet b = generate_gaussian_clusters(half, 4, 3, 50.0, 2.0, 4);
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);
  const double exact = exact_emd(a, b);

  double ratio_sum = 0.0;
  const int trees = 8;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      EmbedOptions options;
      options.method = method;
      options.use_fjlt = false;
      options.delta = 1 << 12;
      options.seed = 700 + t;
      auto embedding = embed(all, options);
      if (!embedding.ok()) continue;
      ratio_sum += tree_emd_split(embedding->tree, half) *
                   embedding->scale_to_input / exact;
    }
  }
  state.counters["emd_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK_CAPTURE(BM_AblationEmdMethod, grid_quadtree,
                  PartitionMethod::kGrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AblationEmdMethod, ball, PartitionMethod::kBall)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AblationEmdMethod, hybrid, PartitionMethod::kHybrid)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AblationFjlt(benchmark::State& state, bool use_fjlt) {
  // 128-dimensional input: with the FJLT the hierarchy runs on
  // O(log n) dims; without it r must grow to d-scale bucketing.
  const std::size_t n = 256, d = 128;
  const PointSet points = generate_subspace(n, d, 5, 60.0, 0.5, 11);

  EmbedOptions base;
  base.use_fjlt = use_fjlt;
  base.fjlt_xi = 0.4;
  base.delta = 1 << 12;
  // Without FJLT, keep bucket_dim small enough to stay tractable.
  if (!use_fjlt) base.num_buckets = d / 2;

  std::vector<Hst> forest;
  for (auto _ : state) {
    forest = build_forest(points, base, 5, 900);
  }
  report_distortion(state, forest, points);
  state.counters["use_fjlt"] = use_fjlt ? 1.0 : 0.0;
}
BENCHMARK_CAPTURE(BM_AblationFjlt, with_fjlt, true)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AblationFjlt, without_fjlt, false)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AblationEnsembleSize(benchmark::State& state) {
  const auto trees = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(256, 4, 50.0, 13);
  EmbedOptions base;
  base.use_fjlt = false;
  base.delta = 1 << 12;
  std::vector<Hst> forest;
  for (auto _ : state) {
    forest = build_forest(points, base, trees, 1100);
  }
  report_distortion(state, forest, points);
  state.counters["ensemble"] = static_cast<double>(trees);
}
BENCHMARK(BM_AblationEnsembleSize)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
