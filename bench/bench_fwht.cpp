// E12a: Fast Walsh–Hadamard throughput — the O(d log d) work bound that
// makes the FJLT "fast". Reported as items (transformed vectors) per
// second; the per-element time should grow only logarithmically with d.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "transform/walsh_hadamard.hpp"

namespace mpte::bench {
namespace {

void BM_FwhtSingleVector(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> data(d);
  for (double& x : data) x = rng.normal();
  for (auto _ : state) {
    fwht_normalized(data);
    benchmark::DoNotOptimize(data.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(double)));
}
BENCHMARK(BM_FwhtSingleVector)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 18)
    ->Unit(benchmark::kMicrosecond);

void BM_FwhtPointBatch(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 256;
  Rng rng(2);
  PointSet points(n, d);
  for (double& x : points.raw()) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fwht_points(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FwhtPointBatch)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
