// E12a: Fast Walsh–Hadamard throughput — the O(d log d) work bound that
// makes the FJLT "fast". Reported as items (transformed vectors) per
// second; the per-element time should grow only logarithmically with d.
// BM_FwhtBackendSweep additionally times one row size under every
// compiled-in SIMD backend and appends to the BENCH_simd.json artifact.
#include <benchmark/benchmark.h>

#include <bit>

#include "common/rng.hpp"
#include "simd_bench_util.hpp"
#include "transform/walsh_hadamard.hpp"

namespace mpte::bench {
namespace {

void BM_FwhtSingleVector(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> data(d);
  for (double& x : data) x = rng.normal();
  for (auto _ : state) {
    fwht_normalized(data);
    benchmark::DoNotOptimize(data.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(double)));
}
BENCHMARK(BM_FwhtSingleVector)
    ->RangeMultiplier(4)
    ->Range(64, 1 << 18)
    ->Unit(benchmark::kMicrosecond);

void BM_FwhtPointBatch(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 256;
  Rng rng(2);
  PointSet points(n, d);
  for (double& x : points.raw()) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fwht_points(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FwhtPointBatch)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_FwhtBackendSweep(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t reps = (1u << 22) / d;  // ~32 MB touched per call
  Rng rng(3);
  std::vector<double> data(d);
  for (double& x : data) x = rng.normal();
  const double bytes_per_call =
      static_cast<double>(reps * d * sizeof(double)) * 2.0 *
      static_cast<double>(std::bit_width(d - 1));
  for (auto _ : state) {
    simd_backend_sweep(state, "fwht_row_" + std::to_string(d),
                       bytes_per_call, [&] {
                         for (std::size_t r = 0; r < reps; ++r) {
                           fwht(data);
                           benchmark::DoNotOptimize(data.data());
                         }
                       });
  }
}
BENCHMARK(BM_FwhtBackendSweep)
    ->Arg(256)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
