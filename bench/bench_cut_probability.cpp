// E2 (Lemma 1): for a pair at distance D under a hybrid partitioning at
// scale w,
//   (a) Pr[separated] <= O(sqrt(d) * D / w), *independent of r*, and
//   (b) same partition  =>  D <= 2 * sqrt(r) * w.
// The bench sweeps D/w and r, reporting the empirical separation frequency
// and its ratio to sqrt(d)*D/w (which should be a roughly constant factor
// across the sweep), plus the realized diameter bound slack.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.hpp"
#include "geometry/generators.hpp"
#include "partition/ball_partition.hpp"
#include "partition/coverage.hpp"
#include "partition/sphere_caps.hpp"

namespace mpte::bench {
namespace {

/// Separation frequency of a fixed pair under one-level r-bucket hybrid
/// partitioning with ball radius w, over `trials` independent seeds.
double separation_frequency(std::size_t dim, std::uint32_t r, double w,
                            double distance, std::size_t trials) {
  const std::size_t bucket_dim = (dim + r - 1) / r;
  const std::size_t grids =
      recommended_num_grids(bucket_dim, 2, r, 1, 1e-9);
  std::size_t cut = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const PointSet pair =
        generate_pair_at_distance(dim, 64.0 * w, distance, 7000 + t);
    bool separated = false;
    for (std::uint32_t j = 0; j < r && !separated; ++j) {
      const PointSet proj =
          pair.pad_dims(bucket_dim * r)
              .project(j * bucket_dim, (j + 1) * bucket_dim);
      const BallGrids bg(bucket_dim, w, grids, 555 + t * 131 + j);
      const std::uint64_t a = bg.assign(proj[0]);
      const std::uint64_t b = bg.assign(proj[1]);
      if (a != b || a == kUncovered) separated = true;
    }
    cut += separated;
  }
  return static_cast<double>(cut) / static_cast<double>(trials);
}

void BM_CutProbabilityVsDistance(benchmark::State& state) {
  const std::size_t dim = 4;
  const double w = 16.0;
  // distance = w / 2^range: sweep D/w over {1/2, 1/4, ..., 1/32}.
  const double distance = w / std::exp2(static_cast<double>(state.range(0)));
  double freq = 0.0;
  for (auto _ : state) {
    freq = separation_frequency(dim, 2, w, distance, 2000);
  }
  const double lemma_bound = std::sqrt(static_cast<double>(dim)) *
                             distance / w;
  state.counters["D_over_w"] = distance / w;
  state.counters["cut_freq"] = freq;
  state.counters["freq_over_bound"] = freq / lemma_bound;  // ~constant
}
BENCHMARK(BM_CutProbabilityVsDistance)
    ->DenseRange(1, 5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CutProbabilityVsR(benchmark::State& state) {
  // Lemma 1's key surprise: the bound does not depend on r. Fix D/w and
  // sweep r; cut_freq should stay near-flat.
  const std::size_t dim = 8;
  const double w = 16.0;
  const double distance = w / 8.0;
  const auto r = static_cast<std::uint32_t>(state.range(0));
  double freq = 0.0;
  for (auto _ : state) {
    freq = separation_frequency(dim, r, w, distance, 2000);
  }
  state.counters["r"] = static_cast<double>(r);
  state.counters["cut_freq"] = freq;
}
BENCHMARK(BM_CutProbabilityVsR)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DiameterBoundVsR(benchmark::State& state) {
  // Lemma 1(b): points sharing a partition at scale w lie within
  // 2*sqrt(r)*w. Measure the max realized within-partition distance over
  // random data and report its fraction of the bound (must be <= 1), plus
  // how many co-located pairs were observed. Data spread ~ the ball
  // radius so co-location actually happens at every r.
  const std::size_t dim = 4;
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const double w = 16.0;
  const std::size_t bucket_dim = dim / r;
  const std::size_t grids =
      recommended_num_grids(bucket_dim, 400, r, 1, 1e-9);

  double max_fraction = 0.0;
  std::size_t colocated_pairs = 0;
  for (auto _ : state) {
    const PointSet points = generate_uniform_cube(400, dim, 2.0 * w, 31);
    std::vector<std::uint64_t> ids(points.size(), 0);
    for (std::uint32_t j = 0; j < r; ++j) {
      const PointSet proj =
          points.project(j * bucket_dim, (j + 1) * bucket_dim);
      const BallGrids bg(bucket_dim, w, grids, 77 + j);
      for (std::size_t i = 0; i < points.size(); ++i) {
        ids[i] = hash_combine(ids[i], bg.assign(proj[i]));
      }
    }
    const double bound = 2.0 * std::sqrt(static_cast<double>(r)) * w;
    colocated_pairs = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t k = i + 1; k < points.size(); ++k) {
        if (ids[i] == ids[k]) {
          ++colocated_pairs;
          max_fraction =
              std::max(max_fraction,
                       l2_distance(points[i], points[k]) / bound);
        }
      }
    }
  }
  state.counters["r"] = static_cast<double>(r);
  state.counters["colocated_pairs"] = static_cast<double>(colocated_pairs);
  state.counters["max_diameter_fraction"] = max_fraction;  // <= 1 always
}
BENCHMARK(BM_DiameterBoundVsR)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_EquatorBandLemma4(benchmark::State& state) {
  // The geometric root of Lemma 1: Pr[|u_1| <= t] vs sqrt(d)*t on the
  // sphere and ball, swept over d at fixed t. prob_over_bound should stay
  // a bounded constant as d grows.
  const auto d = static_cast<std::size_t>(state.range(0));
  const double t = 0.02;
  double sphere = 0.0, ball = 0.0;
  for (auto _ : state) {
    sphere = equator_band_probability(d, t, 40000, 77, true);
    ball = equator_band_probability(d, t, 40000, 78, false);
  }
  state.counters["d"] = static_cast<double>(d);
  state.counters["sphere_prob"] = sphere;
  state.counters["ball_prob"] = ball;
  state.counters["prob_over_bound"] = sphere / lemma4_bound(d, t);
}
BENCHMARK(BM_EquatorBandLemma4)
    ->RangeMultiplier(4)
    ->Range(2, 512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
