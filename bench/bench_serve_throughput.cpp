// Serving-tier throughput: batched + cached EmbeddingService vs a
// one-at-a-time baseline (ISSUE 2 acceptance experiment).
//
// Both configurations run the same deterministic query mix (70% dist /
// 20% knn / 10% range, Zipf-ish hot set so the cache has something to
// hit) from 8 client threads against the same ensemble:
//
//   baseline   max_batch=1, max_wait=0, cache off; every client submits
//              one request and blocks on the future before the next —
//              one queue/condvar handoff and one pool dispatch per query.
//   batched    max_batch=128, max_wait=200us, 1 MiB cache; every client
//              pipelines windows of 64 via submit_batch, then drains.
//
// Answers from both runs are checked against direct evaluate() on the
// ensemble; `mismatches` must be 0 (batching/caching change scheduling,
// never values). On a multi-core host batched_qps should be >= 3x
// baseline_qps; on one hardware thread the gap measures only the saved
// handoffs, so the ratio is reported, not asserted.
//
// Counters: baseline_qps, batched_qps, speedup, p50_ms, p99_ms (batched
// run, submit-to-completion), hit_rate, mismatches, hw_threads, spans.
// The batched run is traced (mpte::obs) and leaves
// bench_serve_throughput.trace.json / .metrics.prom next to the binary.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/ensemble.hpp"
#include "geometry/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace mpte::bench {
namespace {

constexpr std::size_t kClients = 8;
constexpr std::size_t kQueriesPerClient = 4000;
constexpr std::size_t kWindow = 64;

/// Deterministic query stream: query i of client c depends only on
/// (c, i), so both configurations and the verification pass see the
/// exact same requests.
serve::Request make_request(std::size_t client, std::size_t i,
                            std::size_t num_points) {
  const std::uint64_t h = mix64(hash_combine(client + 1, i));
  // A hot set of 64 points gets half the traffic — repeated pairs are
  // the cache fodder; the other half is uniform (cold).
  const bool hot = (h & 1) != 0;
  const std::size_t p = static_cast<std::size_t>(
      (h >> 1) % (hot ? std::min<std::size_t>(64, num_points)
                      : num_points));
  const std::size_t q = static_cast<std::size_t>(
      mix64(h) % (hot ? std::min<std::size_t>(64, num_points)
                      : num_points));
  const std::uint64_t kind = (h >> 32) % 10;
  if (kind < 7) {
    return serve::Request::Distance(p, q,
                                    (h & 2) ? serve::Combiner::kExpected
                                            : serve::Combiner::kMin);
  }
  if (kind < 9) return serve::Request::Knn(p, 1 + (h >> 8) % 8);
  return serve::Request::RangeCount(p, 1.0 + static_cast<double>(q % 20));
}

struct RunResult {
  double qps = 0.0;
  serve::ServiceStats stats;
  std::uint64_t errors = 0;
};

/// Runs the full query mix through `service` from kClients threads.
/// `pipelined` selects submit_batch windows vs submit+get per query.
RunResult run_clients(serve::EmbeddingService& service, bool pipelined) {
  std::atomic<std::uint64_t> errors{0};
  const std::size_t num_points = service.num_points();
  Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      if (pipelined) {
        std::vector<serve::Request> window;
        window.reserve(kWindow);
        for (std::size_t i = 0; i < kQueriesPerClient; i += kWindow) {
          window.clear();
          const std::size_t end =
              std::min(i + kWindow, kQueriesPerClient);
          for (std::size_t j = i; j < end; ++j) {
            window.push_back(make_request(c, j, num_points));
          }
          auto futures = service.submit_batch(window);
          for (auto& future : futures) {
            if (!future.get().ok()) ++errors;
          }
        }
      } else {
        for (std::size_t i = 0; i < kQueriesPerClient; ++i) {
          auto future = service.submit(make_request(c, i, num_points));
          if (!future.get().ok()) ++errors;
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = timer.milliseconds() / 1000.0;
  RunResult result;
  result.qps = seconds > 0.0
                   ? static_cast<double>(kClients * kQueriesPerClient) /
                         seconds
                   : 0.0;
  result.stats = service.stats();
  result.errors = errors.load();
  return result;
}

/// Re-derives every answer through evaluate() (no queue, no cache) and
/// counts disagreements with the service path. Both go through the same
/// LcaIndex code, so the comparison is exact equality.
std::uint64_t verify_answers(serve::EmbeddingService& service) {
  std::uint64_t mismatches = 0;
  const std::size_t num_points = service.num_points();
  for (std::size_t c = 0; c < kClients; ++c) {
    // Sample every 16th query; the stream is deterministic so this
    // covers all kinds and both hot/cold points.
    for (std::size_t i = 0; i < kQueriesPerClient; i += 16) {
      const serve::Request request = make_request(c, i, num_points);
      const auto direct = service.evaluate(request);
      auto served = service.submit(request).get();
      if (!direct.ok() || !served.ok()) {
        ++mismatches;
        continue;
      }
      if (direct->value != served->value ||
          direct->neighbors.size() != served->neighbors.size()) {
        ++mismatches;
        continue;
      }
      for (std::size_t n = 0; n < direct->neighbors.size(); ++n) {
        if (direct->neighbors[n].point != served->neighbors[n].point ||
            direct->neighbors[n].distance !=
                served->neighbors[n].distance) {
          ++mismatches;
          break;
        }
      }
    }
  }
  return mismatches;
}

serve::EmbeddingService make_service(const PointSet& points,
                                     bool batched) {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 71;
  auto ensemble = EmbeddingEnsemble::build(points, options, 4);
  serve::ServiceOptions service_options;
  if (batched) {
    service_options.max_batch = 128;
    service_options.max_wait = std::chrono::microseconds(200);
    service_options.cache_bytes = 1 << 20;
  } else {
    service_options.max_batch = 1;
    service_options.max_wait = std::chrono::microseconds(0);
    service_options.cache_bytes = 0;
  }
  service_options.max_queue = 1 << 16;
  return serve::EmbeddingService(std::move(ensemble).value(),
                                 service_options);
}

void BM_ServeThroughput(benchmark::State& state) {
  const PointSet points = generate_uniform_cube(2000, 8, 20.0, 41);
  for (auto _ : state) {
    double baseline_qps = 0.0;
    {
      auto baseline = make_service(points, /*batched=*/false);
      baseline_qps = run_clients(baseline, /*pipelined=*/false).qps;
      baseline.stop();
    }
    auto batched = make_service(points, /*batched=*/true);
    // Trace only the batched run: each run_batch drain records one
    // "serve/batch" span, so the exported timeline shows batch sizes and
    // pacing under the pipelined client load.
    obs::Tracer::global().enable();
    const RunResult run = run_clients(batched, /*pipelined=*/true);
    obs::Tracer::global().disable();
    const std::uint64_t mismatches = verify_answers(batched) + run.errors;

    // Loadable artifacts next to the bench binary:
    //   bench_serve_throughput.trace.json   (Chrome-trace; open in Perfetto)
    //   bench_serve_throughput.metrics.prom (Prometheus text)
    obs::Registry registry;
    batched.export_metrics(&registry);
    const std::string prom = registry.prometheus_text();
    const std::string json = obs::Tracer::global().chrome_trace_json();
    const auto bytes = [](const std::string& text) {
      return std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    };
    if (!write_file_atomic("bench_serve_throughput.trace.json", bytes(json))
             .ok() ||
        !write_file_atomic("bench_serve_throughput.metrics.prom",
                           bytes(prom))
             .ok()) {
      state.SkipWithError("failed to write obs artifacts");
      return;  // ~EmbeddingService stops the batcher
    }
    state.counters["spans"] =
        static_cast<double>(obs::Tracer::global().size());

    batched.stop();
    state.counters["baseline_qps"] = baseline_qps;
    state.counters["batched_qps"] = run.qps;
    state.counters["speedup"] =
        baseline_qps > 0.0 ? run.qps / baseline_qps : 0.0;
    state.counters["p50_ms"] = run.stats.p50_ms;
    state.counters["p99_ms"] = run.stats.p99_ms;
    state.counters["hit_rate"] = run.stats.cache_hit_rate;
    state.counters["mismatches"] = static_cast<double>(mismatches);
    state.counters["hw_threads"] =
        static_cast<double>(par::hardware_threads());
  }
}
BENCHMARK(BM_ServeThroughput)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
