// Corollary 1 measured *in the MPC model*: the distributed EMD, densest
// ball, and MST run in a constant number of rounds (flat across n) and
// deliver the same quality as their sequential tree counterparts (they
// compute the identical hierarchy quantities — asserted in tests; here we
// record rounds and quality against the exact baselines).
#include <benchmark/benchmark.h>

#include "apps/emd.hpp"
#include "apps/mpc_apps.hpp"
#include "apps/mst.hpp"
#include "geometry/generators.hpp"

namespace mpte::bench {
namespace {

MpcEmbedOptions app_options(std::uint64_t seed) {
  MpcEmbedOptions options;
  options.seed = seed;
  options.use_fjlt = false;
  options.delta = 1 << 12;
  options.num_buckets = 2;
  return options;
}

mpc::Cluster app_cluster() {
  return mpc::Cluster(mpc::ClusterConfig{8, 1 << 23, true});
}

void BM_MpcEmdRoundsAndQuality(benchmark::State& state) {
  const auto half = static_cast<std::size_t>(state.range(0));
  const PointSet a = generate_uniform_cube(half, 3, 50.0, 3);
  const PointSet b = generate_uniform_cube(half, 3, 50.0, 4);
  const double exact = exact_emd(a, b);
  std::size_t rounds = 0;
  double ratio = 0.0;
  for (auto _ : state) {
    mpc::Cluster cluster = app_cluster();
    const auto result = mpc_tree_emd(cluster, a, b, app_options(5));
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    rounds = result->rounds_used;
    ratio = result->emd / exact;
  }
  state.counters["n_per_side"] = static_cast<double>(half);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["emd_ratio"] = ratio;
}
BENCHMARK(BM_MpcEmdRoundsAndQuality)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MpcMstRoundsAndQuality(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, 3, 50.0, 7);
  const double exact = exact_mst(points).total_length;
  std::size_t rounds = 0;
  double ratio = 0.0;
  for (auto _ : state) {
    mpc::Cluster cluster = app_cluster();
    const auto result = mpc_tree_mst(cluster, points, app_options(9));
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    rounds = result->rounds_used;
    ratio = result->total_length / exact;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["mst_ratio"] = ratio;
}
BENCHMARK(BM_MpcMstRoundsAndQuality)
    ->Arg(128)
    ->Arg(512)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MpcDensestBallRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points =
      generate_gaussian_clusters(n, 3, 5, 500.0, 1.0, 11);
  std::size_t rounds = 0, count = 0;
  for (auto _ : state) {
    mpc::Cluster cluster = app_cluster();
    const auto result =
        mpc_densest_ball(cluster, points, 60.0, app_options(13));
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    rounds = result->rounds_used;
    count = result->count;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["cluster_count"] = static_cast<double>(count);
  state.counters["ideal_blob"] = static_cast<double>(n) / 5.0;
}
BENCHMARK(BM_MpcDensestBallRounds)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
