// Dynamic-update economics (ISSUE 9 acceptance experiment): what a
// single insert costs against what it replaces — a full static rebuild —
// plus the two costs the serving story adds on top: epoch publish
// amortization across batch sizes, and query throughput while updates
// are being applied and published.
//
//   BM_DynUpdateVsRebuild/n   one DynamicEmbedder insert (O(depth * r)
//       partition probes) vs embed() over the same n points. The paper's
//       point is the asymptotic gap, so the counter to watch is
//       `speedup` = rebuild_ms / update_ms; acceptance wants >= 10x at
//       n = 1e5 (it lands orders of magnitude higher).
//   BM_DynBatchPublish/b      b inserts + one publish() on a 2-member
//       DynamicEnsemble (n = 10^4). publish() materializes every member
//       (O(n * depth * T)), so per-update cost falls ~linearly with b —
//       the measured argument for batching updates, which the serve
//       batcher does per drained batch.
//   BM_DynServeDuringUpdates  8 reader threads query an EmbeddingService
//       in dynamic mode while upsert/remove pairs stream through the
//       batcher. `query_errors` must be 0 (readers never block on, or
//       observe a torn, epoch swap); `epochs` counts versions published
//       while the readers ran.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/embedder.hpp"
#include "dyn/dynamic_embedder.hpp"
#include "dyn/dynamic_ensemble.hpp"
#include "geometry/generators.hpp"
#include "serve/service.hpp"

namespace mpte::bench {
namespace {

constexpr std::size_t kDim = 8;
constexpr double kBox = 30.0;

/// Initial set plus a tail of extra points (same box, so they snap
/// inside the pinned quantization frame) used as insert fodder.
PointSet points_with_pool(std::size_t n, std::size_t pool,
                          std::uint64_t seed) {
  return generate_uniform_cube(n + pool, kDim, kBox, seed);
}

void BM_DynUpdateVsRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kInserts = 64;
  const PointSet all = points_with_pool(n, kInserts, 83);
  std::vector<std::size_t> head(n);
  for (std::size_t i = 0; i < n; ++i) head[i] = i;
  const PointSet initial = all.select(head);

  dyn::DynOptions options;
  options.seed = 83;
  for (auto _ : state) {
    auto dynamic = dyn::DynamicEmbedder::create(initial, options);
    if (!dynamic.ok()) {
      state.SkipWithError(dynamic.status().to_string().c_str());
      return;
    }
    Timer update_timer;
    for (std::size_t k = 0; k < kInserts; ++k) {
      if (!dynamic->insert(all[n + k]).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
    const double update_ms =
        update_timer.milliseconds() / static_cast<double>(kInserts);

    EmbedOptions static_options = dynamic->static_equivalent_options();
    static_options.seed = 83;
    Timer rebuild_timer;
    const auto rebuilt = embed(initial, static_options);
    const double rebuild_ms = rebuild_timer.milliseconds();
    if (!rebuilt.ok()) {
      state.SkipWithError(rebuilt.status().to_string().c_str());
      return;
    }

    state.counters["update_us"] = 1000.0 * update_ms;
    state.counters["rebuild_ms"] = rebuild_ms;
    state.counters["speedup"] =
        update_ms > 0.0 ? rebuild_ms / update_ms : 0.0;
  }
}
BENCHMARK(BM_DynUpdateVsRebuild)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DynBatchPublish(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kN = 10000;
  const PointSet all = points_with_pool(kN, 256, 89);
  std::vector<std::size_t> head(kN);
  for (std::size_t i = 0; i < kN; ++i) head[i] = i;

  dyn::DynamicEnsemble::Options options;
  options.trees = 2;
  options.member.seed = 89;
  auto ensemble = dyn::DynamicEnsemble::create(all.select(head), options);
  if (!ensemble.ok()) {
    state.SkipWithError(ensemble.status().to_string().c_str());
    return;
  }
  std::size_t next = 0;
  for (auto _ : state) {
    Timer timer;
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t pick = kN + (next++ % 256);
      if (!(*ensemble)->insert(all[pick]).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
    const double insert_ms = timer.milliseconds();
    Timer publish_timer;
    if (!(*ensemble)->publish().ok()) {
      state.SkipWithError("publish failed");
      return;
    }
    const double publish_ms = publish_timer.milliseconds();
    state.counters["publish_ms"] = publish_ms;
    state.counters["per_update_us"] =
        1000.0 * (insert_ms + publish_ms) / static_cast<double>(batch);
    // Keep the live set a bounded distance from kN so iterations are
    // comparable: erase what this round inserted.
    const auto& epoch = *(*ensemble)->current();
    const std::size_t live = epoch.num_points();
    for (std::size_t k = kN; k < live; ++k) {
      (void)(*ensemble)->erase(epoch.point_ids[k]);
    }
  }
}
BENCHMARK(BM_DynBatchPublish)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_DynServeDuringUpdates(benchmark::State& state) {
  constexpr std::size_t kN = 5000;
  constexpr std::size_t kReaders = 8;
  constexpr std::size_t kUpdates = 200;
  const PointSet all = points_with_pool(kN, 64, 97);
  std::vector<std::size_t> head(kN);
  for (std::size_t i = 0; i < kN; ++i) head[i] = i;

  for (auto _ : state) {
    dyn::DynamicEnsemble::Options options;
    options.trees = 2;
    options.member.seed = 97;
    auto ensemble = dyn::DynamicEnsemble::create(all.select(head), options);
    if (!ensemble.ok()) {
      state.SkipWithError(ensemble.status().to_string().c_str());
      return;
    }
    serve::ServiceOptions service_options;
    service_options.max_queue = 1 << 16;
    serve::EmbeddingService service(std::move(*ensemble), service_options);

    const std::uint64_t epoch_start = service.epoch();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> answered{0}, query_errors{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t c = 0; c < kReaders; ++c) {
      readers.emplace_back([&, c] {
        std::size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t p = (c * 7919 + i) % kN;
          const std::size_t q = (p + 1 + i % 97) % kN;
          auto reply =
              service.submit(serve::Request::Distance(p, q)).get();
          reply.ok() ? ++answered : ++query_errors;
          ++i;
        }
      });
    }

    Timer timer;
    std::uint64_t update_errors = 0;
    for (std::size_t k = 0; k < kUpdates; ++k) {
      std::vector<double> coords(all[kN + k % 64].begin(),
                                 all[kN + k % 64].end());
      auto upserted =
          service.submit(serve::Request::Upsert(std::move(coords))).get();
      if (!upserted.ok()) {
        ++update_errors;
        continue;
      }
      if (!service.submit(serve::Request::Remove(upserted->id))
               .get()
               .ok()) {
        ++update_errors;
      }
    }
    const double seconds = timer.milliseconds() / 1000.0;
    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();
    service.stop();

    state.counters["qps_during_updates"] =
        seconds > 0.0 ? static_cast<double>(answered.load()) / seconds
                      : 0.0;
    state.counters["epochs"] =
        static_cast<double>(service.epoch() - epoch_start);
    state.counters["updates_applied"] =
        static_cast<double>(2 * kUpdates - update_errors);
    state.counters["update_errors"] = static_cast<double>(update_errors);
    state.counters["query_errors"] =
        static_cast<double>(query_errors.load());
  }
}
BENCHMARK(BM_DynServeDuringUpdates)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
