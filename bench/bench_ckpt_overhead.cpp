// Checkpointing cost model: what round-level snapshots add to an mpc_embed
// run, and what a crash costs to recover from.
//
//   BM_CheckpointOverhead — wall-clock of the full pipeline with the
//     every-1 / every-4 / off policies; counters report snapshots written,
//     bytes per snapshot, and the fraction of run time spent serializing.
//   BM_RecoveryFromMidRunCrash — a rank crash halfway through the round
//     schedule, recovered from the newest snapshot; counters split total
//     time into (run + recover + replay) and report recovery seconds as
//     measured by the cluster's own resilience counters.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "ckpt/fault.hpp"
#include "ckpt/manager.hpp"
#include "ckpt/recovery.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte::bench {
namespace {

namespace fs = std::filesystem;

using mpc::CheckpointPolicy;
using mpc::Cluster;
using mpc::ClusterConfig;

ClusterConfig base_config() {
  ClusterConfig config;
  config.num_machines = 8;
  config.local_memory_bytes = 1 << 22;
  return config;
}

MpcEmbedOptions embed_options() {
  MpcEmbedOptions options;
  options.seed = 17;
  options.num_buckets = 2;
  options.delta = 1024;
  options.use_fjlt = false;
  return options;
}

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("mpte_bench_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// state.range(0) = checkpoint period k (0 = checkpointing off).
void BM_CheckpointOverhead(benchmark::State& state) {
  const auto every = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(600, 10, 30.0, 5);
  const fs::path dir = scratch_dir("overhead_" + std::to_string(every));

  std::size_t checkpoints = 0, bytes = 0, rounds = 0;
  double ckpt_seconds = 0.0;
  for (auto _ : state) {
    ClusterConfig config = base_config();
    if (every > 0) {
      config.checkpoint.mode = CheckpointPolicy::Mode::kEveryK;
      config.checkpoint.directory = dir.string();
      config.checkpoint.every_k = every;
    }
    Cluster cluster(config);
    ckpt::Coordinator coordinator = ckpt::Coordinator::for_cluster(cluster);
    if (every > 0) cluster.set_hooks(&coordinator);
    const auto result = mpc_embed(cluster, points, embed_options());
    if (!result.ok()) state.SkipWithError("embed failed");
    benchmark::DoNotOptimize(result);
    const auto& resilience = cluster.stats().resilience();
    checkpoints = resilience.checkpoints_written;
    bytes = resilience.checkpoint_bytes;
    ckpt_seconds = resilience.checkpoint_seconds;
    rounds = cluster.stats().rounds();
  }
  state.counters["every_k"] = static_cast<double>(every);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
  state.counters["bytes_per_ckpt"] =
      checkpoints > 0 ? static_cast<double>(bytes) /
                            static_cast<double>(checkpoints)
                      : 0.0;
  state.counters["ckpt_ms_total"] = 1e3 * ckpt_seconds;
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointOverhead)
    ->Arg(0)   // off: the baseline
    ->Arg(4)   // every 4 rounds
    ->Arg(1)   // every round: worst case
    ->Unit(benchmark::kMillisecond);

/// Crash at round state.range(0), checkpoint every round, resume-recover.
void BM_RecoveryFromMidRunCrash(benchmark::State& state) {
  const auto crash_round = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(600, 10, 30.0, 5);
  const fs::path dir = scratch_dir("recovery_" + std::to_string(crash_round));

  double recovery_seconds = 0.0;
  std::size_t replayed = 0;
  for (auto _ : state) {
    ClusterConfig config = base_config();
    config.checkpoint.mode = CheckpointPolicy::Mode::kEveryK;
    config.checkpoint.directory = dir.string();
    config.checkpoint.every_k = 1;
    Cluster cluster(config);

    ckpt::FaultPlan plan;
    plan.add_crash(crash_round, 3);
    ckpt::Coordinator coordinator =
        ckpt::Coordinator::for_cluster(cluster, std::move(plan));
    cluster.set_hooks(&coordinator);
    const auto result = ckpt::run_with_recovery(cluster, coordinator, [&] {
      return mpc_embed(cluster, points, embed_options());
    });
    if (!result.ok()) state.SkipWithError("recovery failed");
    benchmark::DoNotOptimize(result);
    const auto& resilience = cluster.stats().resilience();
    recovery_seconds = resilience.recovery_seconds;
    replayed = resilience.rounds_replayed;
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  state.counters["crash_round"] = static_cast<double>(crash_round);
  state.counters["rounds_replayed"] = static_cast<double>(replayed);
  state.counters["recovery_ms"] = 1e3 * recovery_seconds;
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryFromMidRunCrash)
    ->Arg(6)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
