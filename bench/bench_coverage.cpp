// E7 (Lemmas 6–7 / Lemma 8): grid counts and coverage failure.
//
//   * Empirical coverage failure frequency at U grids tracks the union
//     bound n * (1 - p_k)^U and drops below delta at the recommended U.
//   * The explicit storage the paper's Lemma 8 budget charges for the
//     grids (U * k * 8 bytes per level-bucket) versus the O(1)-byte
//     counter-based representation this library actually ships.
#include <benchmark/benchmark.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "partition/ball_partition.hpp"
#include "partition/coverage.hpp"

namespace mpte::bench {
namespace {

void BM_CoverageFailureVsU(benchmark::State& state) {
  // Fraction of runs (fresh seeds) in which at least one of n points is
  // left uncovered by U grids, in k = 2 dimensions.
  const auto u = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 2, n = 200;
  const PointSet points = generate_uniform_cube(n, k, 50.0, 3);
  double failure_freq = 0.0;
  for (auto _ : state) {
    std::size_t failures = 0;
    const std::size_t runs = 400;
    for (std::size_t run = 0; run < runs; ++run) {
      const BallGrids grids(k, 1.0, u, 1000 + run);
      if (ball_partition(points, grids).uncovered > 0) ++failures;
    }
    failure_freq = static_cast<double>(failures) / static_cast<double>(runs);
  }
  state.counters["U"] = static_cast<double>(u);
  state.counters["failure_freq"] = failure_freq;
  state.counters["union_bound"] =
      coverage_failure_probability(k, n, u);
}
BENCHMARK(BM_CoverageFailureVsU)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Arg(90)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RecommendedUSucceeds(benchmark::State& state) {
  // At U = recommended(delta = 1e-3), failures over 200 runs should be ~0.
  const std::size_t k = 3, n = 300;
  const std::size_t u = recommended_num_grids(k, n, 1, 1, 1e-3);
  const PointSet points = generate_uniform_cube(n, k, 50.0, 7);
  std::size_t failures = 0;
  const std::size_t runs = 200;
  for (auto _ : state) {
    failures = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      const BallGrids grids(k, 1.0, u, 5000 + run);
      if (ball_partition(points, grids).uncovered > 0) ++failures;
    }
  }
  state.counters["U"] = static_cast<double>(u);
  state.counters["failures"] = static_cast<double>(failures);
  state.counters["runs"] = static_cast<double>(runs);
}
BENCHMARK(BM_RecommendedUSucceeds)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GridStorageLemma8(benchmark::State& state) {
  // Space of the full grid family for an n-point hybrid run (all levels,
  // all buckets) under the Lemma-8 accounting, swept over bucket_dim.
  const auto bucket_dim = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 4096, r = 8, levels = 30;
  std::size_t u = 0;
  for (auto _ : state) {
    u = recommended_num_grids(bucket_dim, n, r, levels, 1e-6);
  }
  const double explicit_bytes = static_cast<double>(u) *
                                static_cast<double>(bucket_dim) * 8.0 *
                                static_cast<double>(r * levels);
  state.counters["bucket_dim"] = static_cast<double>(bucket_dim);
  state.counters["U"] = static_cast<double>(u);
  state.counters["explicit_grid_B"] = explicit_bytes;
  // The n^eps local-memory budgets this must fit under (Lemma 8).
  state.counters["n_pow_0.5"] = std::sqrt(static_cast<double>(n * 8));
  state.counters["n_pow_0.8"] =
      std::pow(static_cast<double>(n * 8), 0.8);
}
BENCHMARK(BM_GridStorageLemma8)
    ->DenseRange(1, 6)
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mpte::bench
