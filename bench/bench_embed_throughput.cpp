// E12b: end-to-end embedding throughput and near-linear work scaling. The
// per-point cost should stay roughly flat as n grows (levels depend on
// Delta, not n; expected ball probes are O(1/p_k) per level).
#include <benchmark/benchmark.h>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/embedding_builder.hpp"

namespace mpte::bench {
namespace {

void BM_EmbedHybrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, 6, 50.0, 3 + n);
  EmbedOptions options;
  options.use_fjlt = false;
  options.delta = 1 << 12;
  options.seed = 5;
  for (auto _ : state) {
    auto result = embed(points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmbedHybrid)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_EmbedGridBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, 6, 50.0, 3 + n);
  EmbedOptions options;
  options.method = PartitionMethod::kGrid;
  options.use_fjlt = false;
  options.delta = 1 << 12;
  options.seed = 7;
  for (auto _ : state) {
    auto result = embed(points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmbedGridBaseline)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_EmbedWithFjlt(benchmark::State& state) {
  // High-dimensional input through the full pipeline.
  const std::size_t n = 1024;
  const auto d = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, d, 50.0, 11);
  EmbedOptions options;
  options.use_fjlt = true;
  options.fjlt_xi = 0.45;
  options.delta = 1 << 12;
  options.seed = 13;
  for (auto _ : state) {
    auto result = embed(points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmbedWithFjlt)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_TreeDistanceQueries(benchmark::State& state) {
  const std::size_t n = 4096;
  const PointSet points = generate_uniform_cube(n, 6, 50.0, 17);
  EmbedOptions options;
  options.use_fjlt = false;
  options.delta = 1 << 12;
  auto result = embed(points, options);
  if (!result.ok()) {
    state.SkipWithError(result.status().to_string().c_str());
    return;
  }
  const Hst& tree = result->tree;
  std::size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.distance(i % n, (i * 7919) % n));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeDistanceQueries)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace mpte::bench
