// E11 (Definition 3 / Figure 1 sanity): hybrid partitioning interpolates
// between its extremes.
//
//   * r = 1 *is* ball partitioning (asserted structurally in the tests;
//     here we show the distortion rows coincide).
//   * r = d behaves like grid partitioning: per-bucket 1-d ball intervals
//     intersect into axis-aligned boxes, so its distortion tracks the
//     grid baseline (up to the radius-vs-cell-width constant the paper
//     notes: balls of radius w on cells 4w leave gaps, grid cells don't).
#include "bench_common.hpp"

namespace mpte::bench {
namespace {

constexpr std::size_t kN = 512;
constexpr std::size_t kDim = 4;
constexpr std::uint64_t kDelta = 1 << 12;

PointSet bench_points() {
  return generate_uniform_cube(kN, kDim, 100.0, 21);
}

void run_method(benchmark::State& state, PartitionMethod method,
                std::uint32_t buckets) {
  const PointSet points = bench_points();
  EmbedOptions base;
  base.method = method;
  base.num_buckets = buckets;
  base.use_fjlt = false;
  base.delta = kDelta;
  std::vector<Hst> forest;
  for (auto _ : state) {
    forest = build_forest(points, base, 6);
  }
  report_distortion(state, forest, points);
}

void BM_Extreme_BallR1(benchmark::State& state) {
  run_method(state, PartitionMethod::kBall, 0);
}
void BM_Extreme_HybridR1(benchmark::State& state) {
  run_method(state, PartitionMethod::kHybrid, 1);
}
void BM_Extreme_HybridR2(benchmark::State& state) {
  run_method(state, PartitionMethod::kHybrid, 2);
}
void BM_Extreme_HybridRD(benchmark::State& state) {
  run_method(state, PartitionMethod::kHybrid,
             static_cast<std::uint32_t>(kDim));
}
void BM_Extreme_Grid(benchmark::State& state) {
  run_method(state, PartitionMethod::kGrid, 0);
}

BENCHMARK(BM_Extreme_BallR1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Extreme_HybridR1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Extreme_HybridR2)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Extreme_HybridRD)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Extreme_Grid)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
