// E1 (Theorem 1.2 / Theorem 2 vs Arora's baseline): expected distortion of
// grid vs ball vs hybrid partitioning as n grows.
//
// Paper claim: hybrid achieves O(sqrt(log n) * log Delta * sqrt(log log n))
// expected distortion, beating grid partitioning's O(log^2 n) — at matched
// n and Delta the hybrid/ball rows should sit below the grid rows, with
// the gap widening as n (and Delta = poly(n)) grows.
#include "bench_common.hpp"

namespace mpte::bench {
namespace {

void BM_DistortionVsN(benchmark::State& state, PartitionMethod method) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Delta = poly(n): tie the grid resolution to n as the theorems assume.
  const std::uint64_t delta = static_cast<std::uint64_t>(n) * n;
  // d = 4 keeps ball partitioning (r = 1, bucket dim 4) tractable — the
  // very intractability of larger buckets is the paper's motivation for
  // hybridizing (E3 sweeps r directly).
  const PointSet points = generate_uniform_cube(n, 4, 100.0, 42 + n);

  EmbedOptions base;
  base.method = method;
  base.use_fjlt = false;  // isolate the partitioning methods
  base.delta = delta;
  const std::size_t trees = 5;

  std::vector<Hst> forest;
  for (auto _ : state) {
    forest = build_forest(points, base, trees);
  }
  report_distortion(state, forest, points);
  state.counters["n"] = static_cast<double>(n);
  state.counters["delta"] = static_cast<double>(delta);
}

BENCHMARK_CAPTURE(BM_DistortionVsN, grid, PartitionMethod::kGrid)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DistortionVsN, ball, PartitionMethod::kBall)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DistortionVsN, hybrid, PartitionMethod::kHybrid)
    ->RangeMultiplier(2)
    ->Range(256, 2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
