// E8–E10 (Corollary 1): application quality through the embedding.
//
//   * E8 MST: Euclidean cost of the tree-guided spanning tree over the
//     exact Prim MST — bounded by the embedding distortion, typically a
//     small constant on uniform/clustered data.
//   * E9 EMD: tree-flow EMD over exact min-cost-flow EMD (>= 1 by
//     domination, single-digit factors expected).
//   * E10 densest ball: fraction of the exact densest ball's count the
//     tree cluster captures at a distortion-stretched diameter.
#include <benchmark/benchmark.h>

#include "apps/densest_ball.hpp"
#include "apps/emd.hpp"
#include "apps/kcenter.hpp"
#include "apps/kmedian.hpp"
#include "apps/mst.hpp"
#include "apps/nearest_neighbor.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace mpte::bench {
namespace {

Embedding make_embedding(const PointSet& points, std::uint64_t seed) {
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = seed;
  auto result = embed(points, options);
  if (!result.ok()) throw MpteError(result.status().to_string());
  return std::move(result).value();
}

void BM_MstApproximation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, 4, 50.0, 3 + n);
  const double exact = exact_mst(points).total_length;
  double ratio_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(points, 100 + t);
      ratio_sum += tree_mst(embedding.tree, points).total_length / exact;
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["mst_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK(BM_MstApproximation)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MstOnClusteredData(benchmark::State& state) {
  const std::size_t n = 512;
  const PointSet points =
      generate_gaussian_clusters(n, 4, 8, 500.0, 1.0, 7);
  const double exact = exact_mst(points).total_length;
  double ratio_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(points, 200 + t);
      ratio_sum += tree_mst(embedding.tree, points).total_length / exact;
    }
  }
  state.counters["mst_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK(BM_MstOnClusteredData)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_EmdApproximation(benchmark::State& state) {
  const auto half = static_cast<std::size_t>(state.range(0));
  const PointSet a = generate_uniform_cube(half, 3, 50.0, 11);
  const PointSet b = generate_uniform_cube(half, 3, 50.0, 12);
  const double exact = exact_emd(a, b);
  PointSet all = a;
  for (std::size_t i = 0; i < b.size(); ++i) all.push_back(b[i]);

  double ratio_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(all, 300 + t);
      const double tree =
          tree_emd_split(embedding.tree, half) * embedding.scale_to_input;
      ratio_sum += tree / exact;
    }
  }
  state.counters["n_per_side"] = static_cast<double>(half);
  state.counters["emd_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK(BM_EmdApproximation)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DensestBallQuality(benchmark::State& state) {
  // Clustered data with a known dense blob; diameter target ~ blob size.
  const std::size_t n = 600;
  const PointSet points =
      generate_gaussian_clusters(n, 3, 6, 800.0, 1.0, 13);
  const double radius = 4.0;
  const auto exact = densest_ball_exact(points, radius);

  double capture_sum = 0.0, stretch_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    capture_sum = stretch_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(points, 400 + t);
      // Allow the tree the distortion-stretched diameter (beta * D).
      const double beta = 16.0;
      const double target =
          beta * 2.0 * radius / embedding.scale_to_input;
      const auto tree = densest_ball_tree(embedding.tree, target);
      capture_sum += static_cast<double>(tree.count) /
                     static_cast<double>(exact.count);
      stretch_sum +=
          tree.diameter * embedding.scale_to_input / (2.0 * radius);
    }
  }
  state.counters["exact_count"] = static_cast<double>(exact.count);
  state.counters["capture_avg"] = capture_sum / trees;    // alpha
  state.counters["diameter_stretch"] = stretch_sum / trees;  // beta realized
}
BENCHMARK(BM_DensestBallQuality)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_KMedianQuality(benchmark::State& state) {
  // Extension app: tree k-median DP vs exhaustive optimum on a small
  // clustered instance.
  const std::size_t n = 16, k = 3;
  const PointSet points = generate_gaussian_clusters(n, 2, 3, 100.0, 1.0, 17);
  const double optimal = exact_kmedian_cost(points, k);
  double ratio_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(points, 500 + t);
      const auto dp = tree_kmedian_dp(embedding.tree, k);
      ratio_sum += kmedian_cost(points, dp.medians) / optimal;
    }
  }
  state.counters["kmedian_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK(BM_KMedianQuality)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_KCenterQuality(benchmark::State& state) {
  // Tree k-center vs the Gonzalez 2-approx baseline on clustered data.
  const auto k = static_cast<std::size_t>(state.range(0));
  const PointSet points =
      generate_gaussian_clusters(400, 3, k, 1500.0, 1.5, 27);
  const auto baseline = gonzalez_kcenter(points, k);
  double ratio_sum = 0.0;
  const int trees = 5;
  for (auto _ : state) {
    ratio_sum = 0.0;
    for (int t = 0; t < trees; ++t) {
      const Embedding embedding = make_embedding(points, 700 + t);
      ratio_sum += tree_kcenter(embedding.tree, points, k).radius /
                   baseline.radius;
    }
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["kcenter_ratio_avg"] = ratio_sum / trees;
}
BENCHMARK(BM_KCenterQuality)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_NearestNeighborQuality(benchmark::State& state) {
  // Approximate NN via the tree vs exact linear scan: recall@1 and the
  // mean distance inflation at a fixed candidate budget.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t budget = 16;
  const PointSet points = generate_uniform_cube(n, 4, 50.0, 23);
  const Embedding embedding = make_embedding(points, 600);
  double recall = 0.0, inflation = 0.0;
  for (auto _ : state) {
    std::size_t hits = 0;
    double ratio_sum = 0.0;
    for (std::size_t q = 0; q < n; ++q) {
      const auto approx =
          tree_nearest_neighbor(embedding.tree, points, q, budget);
      const auto exact = exact_nearest_neighbor(points, q);
      if (approx.distance <= exact.distance + 1e-12) ++hits;
      ratio_sum += approx.distance / exact.distance;
    }
    recall = static_cast<double>(hits) / static_cast<double>(n);
    inflation = ratio_sum / static_cast<double>(n);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["recall_at_1"] = recall;
  state.counters["distance_inflation"] = inflation;
}
BENCHMARK(BM_NearestNeighborQuality)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
