// Zero-copy communication substrate: how many byte slabs the host actually
// materializes per logical MPC operation. Before the Buffer refactor a
// broadcast deep-copied its blob O(M) times (once per queued send, again
// per delivery, again per persist); with refcounted Buffers the whole
// fan-out shares the sender's single slab, so slabs-per-broadcast is O(1)
// — in fact 0 beyond the initial materialization — independent of M.
#include <benchmark/benchmark.h>

#include "mpc/buffer.hpp"
#include "mpc/primitives.hpp"

namespace mpte::bench {
namespace {

using mpc::Buffer;
using mpc::Cluster;
using mpc::ClusterConfig;

void BM_BroadcastSlabs(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const std::size_t blob_bytes = 1 << 16;
  std::uint64_t slabs = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{machines, 1 << 22, true});
    cluster.store(0).set_blob("b", std::vector<std::uint8_t>(blob_bytes));
    Buffer::reset_counters();
    broadcast_blob(cluster, 0, "b", 4);
    slabs = Buffer::slabs_created();
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["slabs_per_broadcast"] = static_cast<double>(slabs);
  // What the pre-Buffer implementation materialized: one deep copy per
  // queued send plus one stored copy per receiving machine.
  state.counters["deep_copies_before"] =
      static_cast<double>(2 * (machines - 1));
}
BENCHMARK(BM_BroadcastSlabs)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_BroadcastWallClock(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const std::size_t blob_bytes = 1 << 20;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{machines, 8u << 20, true});
    cluster.store(0).set_blob("b", std::vector<std::uint8_t>(blob_bytes));
    broadcast_blob(cluster, 0, "b", 4);
    benchmark::DoNotOptimize(cluster.store(machines - 1).blob("b").data());
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["blob_B"] = static_cast<double>(blob_bytes);
}
BENCHMARK(BM_BroadcastWallClock)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ShuffleSlabs(benchmark::State& state) {
  // The shuffle's payloads are freshly serialized buckets, so slabs scale
  // with the number of non-empty (src, dst) pairs — reported here as the
  // baseline the broadcast numbers contrast against.
  const auto machines = static_cast<std::size_t>(state.range(0));
  std::vector<mpc::KV> records(4096);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i] = mpc::KV{i * 2654435761u, i};
  }
  std::uint64_t slabs = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{machines, 1 << 22, true});
    mpc::scatter_vector(cluster, "in", records);
    Buffer::reset_counters();
    mpc::shuffle_kv_by_key(cluster, "in", "out");
    slabs = Buffer::slabs_created();
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["slabs_per_shuffle"] = static_cast<double>(slabs);
}
BENCHMARK(BM_ShuffleSlabs)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
