// Shared helper for the SIMD kernel benches (bench_parallel_scaling,
// bench_fwht): sweeps every available backend over one kernel workload,
// reports per-backend GB/s and speedup-vs-scalar as benchmark counters,
// mirrors them into an obs::Registry under the mpte_simd_kernel_* names,
// and persists machine-readable artifacts next to the binary:
//
//   BENCH_simd.json          rows of {kernel, backend, ms, gb_per_s,
//                            speedup_vs_scalar}
//   BENCH_simd.metrics.prom  the same numbers as Prometheus gauges
//
// Artifacts are rewritten after every sweep with all rows recorded so far
// by this process, so the files are complete whenever the run stops.
// Rows recorded by an earlier process (bench_parallel_scaling and
// bench_fwht both write here) are preserved: the recorder loads any
// existing BENCH_simd.json on first use and replaces rows kernel-by-kernel
// rather than clobbering the file.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"

namespace mpte::bench {

struct SimdKernelRow {
  std::string kernel;
  std::string backend;
  double ms = 0.0;
  double gb_per_s = 0.0;
  double speedup_vs_scalar = 0.0;
};

/// Process-wide accumulator behind the BENCH_simd artifacts.
class SimdBenchRecorder {
 public:
  static SimdBenchRecorder& global() {
    static SimdBenchRecorder recorder;
    return recorder;
  }

  /// Replaces any earlier row for the same (kernel, backend) — including
  /// one loaded from a previous process's artifact — then appends.
  void add(SimdKernelRow row) {
    std::erase_if(rows_, [&row](const SimdKernelRow& r) {
      return r.kernel == row.kernel && r.backend == row.backend;
    });
    rows_.push_back(std::move(row));
  }

  /// Rewrites BENCH_simd.json and BENCH_simd.metrics.prom from all rows.
  void write_artifacts() const {
    std::ostringstream json;
    json << "{\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& r = rows_[i];
      json << (i == 0 ? "\n" : ",\n");
      json << "    {\"kernel\": \"" << r.kernel << "\", \"backend\": \""
           << r.backend << "\", \"ms\": " << r.ms
           << ", \"gb_per_s\": " << r.gb_per_s
           << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar << "}";
    }
    json << "\n  ]\n}\n";

    obs::Registry registry;
    for (const auto& r : rows_) {
      const obs::Labels labels = {{"backend", r.backend},
                                  {"kernel", r.kernel}};
      registry
          .gauge("mpte_simd_kernel_gb_per_s",
                 "Kernel throughput in gigabytes per second", labels)
          .set(r.gb_per_s);
      registry
          .gauge("mpte_simd_kernel_speedup",
                 "Kernel wall-clock speedup over the scalar backend",
                 labels)
          .set(r.speedup_vs_scalar);
      registry
          .gauge("mpte_simd_kernel_ms", "Kernel wall-clock milliseconds",
                 labels)
          .set(r.ms);
    }
    const std::string prom = registry.prometheus_text();
    const auto bytes = [](const std::string& text) {
      return std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    };
    (void)write_file_atomic("BENCH_simd.json", bytes(json.str()));
    (void)write_file_atomic("BENCH_simd.metrics.prom", bytes(prom));
  }

 private:
  SimdBenchRecorder() { load_existing(); }

  /// Seeds the accumulator from a BENCH_simd.json left by another bench
  /// binary. The file is this class's own one-row-per-line output, so a
  /// line scanner is enough — anything unparseable is simply dropped.
  void load_existing() {
    std::ifstream in("BENCH_simd.json");
    if (!in) return;
    const auto str_field = [](const std::string& line, const std::string& key,
                              std::string& out) {
      const std::string tag = "\"" + key + "\": \"";
      const auto start = line.find(tag);
      if (start == std::string::npos) return false;
      const auto begin = start + tag.size();
      const auto end = line.find('"', begin);
      if (end == std::string::npos) return false;
      out = line.substr(begin, end - begin);
      return true;
    };
    const auto num_field = [](const std::string& line, const std::string& key,
                              double& out) {
      const std::string tag = "\"" + key + "\": ";
      const auto start = line.find(tag);
      if (start == std::string::npos) return false;
      out = std::strtod(line.c_str() + start + tag.size(), nullptr);
      return true;
    };
    std::string line;
    while (std::getline(in, line)) {
      SimdKernelRow row;
      if (str_field(line, "kernel", row.kernel) &&
          str_field(line, "backend", row.backend) &&
          num_field(line, "ms", row.ms) &&
          num_field(line, "gb_per_s", row.gb_per_s) &&
          num_field(line, "speedup_vs_scalar", row.speedup_vs_scalar)) {
        rows_.push_back(std::move(row));
      }
    }
  }

  std::vector<SimdKernelRow> rows_;
};

/// Best-of-`reps` wall-clock milliseconds of fn().
template <typename Fn>
double simd_best_ms(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.milliseconds());
  }
  return best;
}

/// Times `fn` once per available backend (forcing each via set_backend,
/// then restoring the dispatch default), records counters
/// "<backend>_ms" / "<backend>_gbps" / "<backend>_speedup" on `state`,
/// and appends the rows to the BENCH_simd artifacts. `bytes_per_call` is
/// the number of bytes one fn() invocation streams (for GB/s).
template <typename Fn>
void simd_backend_sweep(benchmark::State& state, const std::string& kernel,
                        double bytes_per_call, Fn&& fn) {
  const simd::Backend saved = simd::active_backend();
  double scalar_ms = 0.0;
  for (const simd::Backend backend : simd::available_backends()) {
    if (!simd::set_backend(backend)) continue;
    const double ms = simd_best_ms(fn);
    if (backend == simd::Backend::kScalar) scalar_ms = ms;
    SimdKernelRow row;
    row.kernel = kernel;
    row.backend = simd::backend_name(backend);
    row.ms = ms;
    row.gb_per_s = ms > 0.0 ? bytes_per_call / (ms * 1e6) : 0.0;
    row.speedup_vs_scalar = ms > 0.0 ? scalar_ms / ms : 0.0;
    state.counters[row.backend + "_ms"] = row.ms;
    state.counters[row.backend + "_gbps"] = row.gb_per_s;
    state.counters[row.backend + "_speedup"] = row.speedup_vs_scalar;
    SimdBenchRecorder::global().add(std::move(row));
  }
  simd::set_backend(saved);
  SimdBenchRecorder::global().write_artifacts();
}

}  // namespace mpte::bench
