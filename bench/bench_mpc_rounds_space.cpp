// E6 (Theorem 1 cost profile): the MPC pipeline's round count must be O(1)
// — flat as n grows — while the measured peak local memory stays within
// the configured O((nd)^eps) cap and total space stays near-linear in nd.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/checksum.hpp"
#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace mpte::bench {
namespace {

void BM_MpcRoundsVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 6;
  const PointSet points = generate_uniform_cube(n, d, 50.0, 3 + n);

  // Fully scalable setting: local memory is (input bytes)^eps and the
  // machine count scales so each machine's share — points plus their
  // logDelta-long paths, the n^eps/logDelta sizing of Algorithm 2 — fits.
  const std::size_t input_bytes = n * d * sizeof(double);
  const std::size_t local = mpc::local_memory_for_input(
      input_bytes, 0.6, /*min_bytes=*/1 << 15);
  const std::size_t levels_estimate = 28;  // ~ log2(delta * sqrt(d r)) + 1
  const std::size_t bytes_per_point =
      d * sizeof(double) + levels_estimate * 16 + 32;
  const std::size_t machines =
      std::max<std::size_t>(8, (3 * n * bytes_per_point) / local + 1);

  std::size_t rounds = 0, peak_local = 0, peak_total = 0;
  for (auto _ : state) {
    mpc::Cluster cluster(mpc::ClusterConfig{machines, local, true});
    MpcEmbedOptions options;
    options.use_fjlt = false;
    options.delta = 1 << 12;
    options.seed = 11;
    // Fully scalable broadcast: fan-out M^(1/2) keeps the tree depth (and
    // so the total round count) constant as machines scale.
    options.broadcast_fanout = std::max<std::size_t>(
        4, static_cast<std::size_t>(
               std::ceil(std::sqrt(static_cast<double>(machines)))));
    const auto result = mpc_embed(cluster, points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    rounds = result->rounds_used;
    peak_local = cluster.stats().peak_local_bytes();
    peak_total = cluster.stats().peak_total_bytes();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["rounds"] = static_cast<double>(rounds);  // flat in n
  state.counters["local_cap_B"] = static_cast<double>(local);
  state.counters["peak_local_B"] = static_cast<double>(peak_local);
  state.counters["peak_total_B"] = static_cast<double>(peak_total);
  state.counters["input_B"] = static_cast<double>(input_bytes);
  state.counters["total_over_input"] =
      static_cast<double>(peak_total) / static_cast<double>(input_bytes);
}
BENCHMARK(BM_MpcRoundsVsN)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MpcRoundsWithFjlt(benchmark::State& state) {
  // Same flat-rounds claim with the FJLT stage included (high-d input).
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 256;
  const PointSet points = generate_uniform_cube(n, d, 50.0, 5 + n);
  std::size_t rounds = 0;
  for (auto _ : state) {
    mpc::Cluster cluster(mpc::ClusterConfig{8, 1 << 24, true});
    MpcEmbedOptions options;
    options.use_fjlt = true;
    options.fjlt_xi = 0.45;
    options.delta = 1 << 12;
    options.seed = 13;
    const auto result = mpc_embed(cluster, points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    rounds = result->rounds_used;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_MpcRoundsWithFjlt)
    ->Arg(128)
    ->Arg(512)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MpcCommunicationVolume(benchmark::State& state) {
  // Total message bytes across the run — near-linear in the input.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 6;
  const PointSet points = generate_uniform_cube(n, d, 50.0, 17 + n);
  std::size_t volume = 0;
  for (auto _ : state) {
    mpc::Cluster cluster(mpc::ClusterConfig{8, 1 << 22, true});
    MpcEmbedOptions options;
    options.use_fjlt = false;
    options.delta = 1 << 12;
    options.seed = 19;
    const auto result = mpc_embed(cluster, points, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    volume = 0;
    for (const auto& record : cluster.stats().records()) {
      volume += record.total_message_bytes;
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["message_B"] = static_cast<double>(volume);
  state.counters["message_B_per_point"] =
      static_cast<double>(volume) / static_cast<double>(n);
}
BENCHMARK(BM_MpcCommunicationVolume)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MpcProfiledRun(benchmark::State& state) {
  // The observability layer in anger: a traced, hook-profiled pipeline run
  // that leaves loadable artifacts next to the bench —
  //   bench_mpc_rounds_space.trace.json   (Chrome-trace; open in Perfetto)
  //   bench_mpc_rounds_space.metrics.prom (Prometheus text)
  // and attributes wall-clock to the runtime's compute / audit / deliver
  // phases via ClusterHooks::round_profile — no algorithm code changes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 6;
  const PointSet points = generate_uniform_cube(n, d, 50.0, 17 + n);
  obs::ProfilingHooks hooks;
  for (auto _ : state) {
    hooks.reset();
    obs::Tracer::global().enable();
    mpc::Cluster cluster(mpc::ClusterConfig{8, 1 << 22, true});
    cluster.set_hooks(&hooks);
    MpcEmbedOptions options;
    options.use_fjlt = false;
    options.delta = 1 << 12;
    options.seed = 19;
    const auto result = mpc_embed(cluster, points, options);
    if (!result.ok()) {
      obs::Tracer::global().disable();
      state.SkipWithError(result.status().to_string().c_str());
      return;
    }
    obs::Tracer::global().disable();

    obs::Registry registry;
    cluster.stats().export_metrics(&registry);
    hooks.export_metrics(&registry);
    const std::string prom = registry.prometheus_text();
    const std::string json = obs::Tracer::global().chrome_trace_json();
    const auto bytes = [](const std::string& text) {
      return std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    };
    if (!write_file_atomic("bench_mpc_rounds_space.trace.json", bytes(json))
             .ok() ||
        !write_file_atomic("bench_mpc_rounds_space.metrics.prom",
                           bytes(prom))
             .ok()) {
      state.SkipWithError("failed to write obs artifacts");
      return;
    }
  }
  const auto& totals = hooks.totals();
  state.counters["rounds_profiled"] = static_cast<double>(totals.rounds);
  state.counters["compute_ms"] = totals.compute_seconds * 1e3;
  state.counters["audit_ms"] = totals.audit_seconds * 1e3;
  state.counters["deliver_ms"] = totals.deliver_seconds * 1e3;
  state.counters["spans"] =
      static_cast<double>(obs::Tracer::global().size());
  std::printf("%s", obs::Tracer::global().flame_summary().c_str());
}
BENCHMARK(BM_MpcProfiledRun)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
