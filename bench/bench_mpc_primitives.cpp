// Cost profile of the MPC building blocks themselves: round counts
// (constant by construction — the table proves it), communication volume,
// and load balance for broadcast, shuffle, sample sort, and prefix sum.
// These are the primitives every algorithm in the library composes, so
// their costs bound everything else.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sort.hpp"

namespace mpte::bench {
namespace {

using mpc::Cluster;
using mpc::ClusterConfig;
using mpc::KV;

std::vector<KV> random_records(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<KV> records(n);
  for (auto& kv : records) {
    kv.key = rng();
    kv.value = rng();
  }
  return records;
}

void BM_BroadcastCost(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const std::size_t blob_bytes = 4096;
  std::size_t rounds = 0, volume = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{machines, 1 << 20, true});
    cluster.store(0).set_blob("b", std::vector<std::uint8_t>(blob_bytes));
    broadcast_blob(cluster, 0, "b", 4);
    rounds = cluster.stats().rounds();
    volume = 0;
    for (const auto& r : cluster.stats().records()) {
      volume += r.total_message_bytes;
    }
  }
  state.counters["machines"] = static_cast<double>(machines);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["volume_B"] = static_cast<double>(volume);
  state.counters["optimal_volume_B"] =
      static_cast<double>((machines - 1) * blob_bytes);
}
BENCHMARK(BM_BroadcastCost)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ShuffleCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0, volume = 0, max_load = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{8, 1 << 22, true});
    scatter_vector(cluster, "in", random_records(n, n));
    shuffle_kv_by_key(cluster, "in", "out");
    rounds = cluster.stats().rounds();
    volume = 0;
    for (const auto& r : cluster.stats().records()) {
      volume += r.total_message_bytes;
    }
    max_load = 0;
    for (std::uint32_t id = 0; id < 8; ++id) {
      max_load = std::max(max_load,
                          cluster.store(id).get_vector<KV>("out").size());
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["volume_B_per_record"] =
      static_cast<double>(volume) / static_cast<double>(n);
  state.counters["max_load_over_ideal"] =
      static_cast<double>(max_load) / (static_cast<double>(n) / 8.0);
}
BENCHMARK(BM_ShuffleCost)
    ->RangeMultiplier(8)
    ->Range(1024, 65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_SampleSortCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0, max_load = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{8, 1 << 22, true});
    scatter_vector(cluster, "in", random_records(n, 3 * n));
    sample_sort_kv(cluster, "in", "out");
    rounds = cluster.stats().rounds();
    max_load = 0;
    for (std::uint32_t id = 0; id < 8; ++id) {
      max_load = std::max(max_load,
                          cluster.store(id).get_vector<KV>("out").size());
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["max_load_over_ideal"] =
      static_cast<double>(max_load) / (static_cast<double>(n) / 8.0);
}
BENCHMARK(BM_SampleSortCost)
    ->RangeMultiplier(8)
    ->Range(1024, 65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PrefixSumCost(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0;
  for (auto _ : state) {
    Cluster cluster(ClusterConfig{8, 1 << 22, true});
    scatter_vector(cluster, "in", std::vector<std::uint64_t>(n, 3));
    prefix_sum_u64(cluster, "in", "out");
    rounds = cluster.stats().rounds();
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_PrefixSumCost)
    ->RangeMultiplier(8)
    ->Range(1024, 65536)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
