// E4 + E5 (Theorem 3): FJLT quality and space.
//
//   * E4 — distance preservation: the fraction of pairwise distance ratios
//     outside (1±xi) should be ~0 at k = Theta(xi^-2 log n), matching the
//     dense JL baseline while doing far less work per point.
//   * E5 — space: nnz(P) concentrates at q*k*d = O(xi^-2 log^3 n), the
//     term behind Theorem 3's O(nd + xi^-2 n log^3 n) total space, a log n
//     factor below the dense transform's O(nd log n).
#include <benchmark/benchmark.h>

#include <cmath>

#include "geometry/generators.hpp"
#include "transform/dense_jl.hpp"
#include "transform/fjlt.hpp"

namespace mpte::bench {
namespace {

struct QualityStats {
  double violation_fraction;
  double max_abs_log_ratio;
};

QualityStats pairwise_quality(const PointSet& original,
                              const PointSet& mapped, double xi) {
  std::size_t violations = 0, pairs = 0;
  double worst = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = i + 1; j < original.size(); ++j) {
      const double orig = l2_distance(original[i], original[j]);
      if (orig == 0.0) continue;
      const double now = l2_distance(mapped[i], mapped[j]);
      ++pairs;
      if (now < (1 - xi) * orig || now > (1 + xi) * orig) ++violations;
      worst = std::max(worst, std::abs(std::log(now / orig)));
    }
  }
  return {static_cast<double>(violations) / static_cast<double>(pairs),
          worst};
}

void BM_FjltQualityVsXi(benchmark::State& state) {
  const double xi = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t n = 256, d = 512;
  const PointSet points = generate_gaussian_clusters(n, d, 5, 10.0, 1.0, 3);
  const FjltConfig config = FjltConfig::make(n, d, xi, 17);
  QualityStats quality{};
  for (auto _ : state) {
    const PointSet mapped = Fjlt(config).transform(points);
    quality = pairwise_quality(points, mapped, xi);
  }
  state.counters["xi"] = xi;
  state.counters["k"] = static_cast<double>(config.output_dim);
  state.counters["violation_frac"] = quality.violation_fraction;
  state.counters["max_abs_log_ratio"] = quality.max_abs_log_ratio;
}
BENCHMARK(BM_FjltQualityVsXi)
    ->Arg(45)
    ->Arg(30)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DenseJlQualityBaseline(benchmark::State& state) {
  const double xi = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t n = 256, d = 512;
  const PointSet points = generate_gaussian_clusters(n, d, 5, 10.0, 1.0, 3);
  const std::size_t k = FjltConfig::make(n, d, xi, 17).output_dim;
  QualityStats quality{};
  for (auto _ : state) {
    const PointSet mapped = DenseJl(d, k, 19).transform(points);
    quality = pairwise_quality(points, mapped, xi);
  }
  state.counters["xi"] = xi;
  state.counters["k"] = static_cast<double>(k);
  state.counters["violation_frac"] = quality.violation_fraction;
}
BENCHMARK(BM_DenseJlQualityBaseline)
    ->Arg(45)
    ->Arg(30)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FjltSpaceVsN(benchmark::State& state) {
  // nnz(P) against the Theorem 3 budget xi^-2 log^3 n, and the dense
  // transform's k*d for contrast.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 4096;
  const double xi = 0.3;
  const FjltConfig config = FjltConfig::make(n, d, xi, 23);
  std::size_t nnz = 0;
  for (auto _ : state) {
    nnz = Fjlt(config).p_nonzeros();
  }
  const double log_n = std::log(static_cast<double>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["nnz_P"] = static_cast<double>(nnz);
  state.counters["budget_log3n_over_xi2"] = log_n * log_n * log_n / (xi * xi);
  state.counters["dense_kd"] =
      static_cast<double>(config.output_dim) * static_cast<double>(d);
}
BENCHMARK(BM_FjltSpaceVsN)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FjltApplyThroughput(benchmark::State& state) {
  // Work per point: FJLT is O(d log d + nnz/k per row) vs dense's O(kd).
  const std::size_t n = 64;
  const auto d = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, d, 1.0, 29);
  const FjltConfig config = FjltConfig::make(1024, d, 0.3, 31);
  const Fjlt fjlt(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fjlt.transform(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FjltApplyThroughput)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_DenseJlApplyThroughput(benchmark::State& state) {
  const std::size_t n = 64;
  const auto d = static_cast<std::size_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, d, 1.0, 29);
  const std::size_t k = FjltConfig::make(1024, d, 0.3, 31).output_dim;
  const DenseJl jl(d, k, 37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jl.transform(points));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DenseJlApplyThroughput)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mpte::bench
