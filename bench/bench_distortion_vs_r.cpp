// E3 (Theorem 2 trade-off): sweeping the bucket count r trades distortion
// for space. Expected distortion grows like sqrt(r) (the diameter bound is
// 2*sqrt(r)*w while the cut probability is r-free), while the number of
// grids U needed per bucket *falls* double-exponentially as buckets get
// smaller (Lemma 7) — the reason hybrid partitioning exists.
#include "bench_common.hpp"

#include "partition/coverage.hpp"

namespace mpte::bench {
namespace {

void BM_DistortionVsR(benchmark::State& state) {
  const std::size_t n = 512;
  const std::size_t dim = 8;
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const PointSet points = generate_uniform_cube(n, dim, 100.0, 7);

  EmbedOptions base;
  base.method = PartitionMethod::kHybrid;
  base.num_buckets = r;
  base.use_fjlt = false;
  base.delta = 1 << 12;

  std::vector<Hst> forest;
  for (auto _ : state) {
    forest = build_forest(points, base, 5);
  }
  report_distortion(state, forest, points);

  const std::size_t bucket_dim = (dim + r - 1) / r;
  state.counters["r"] = static_cast<double>(r);
  state.counters["bucket_dim"] = static_cast<double>(bucket_dim);
  // The space side of the trade-off: grids needed per (level, bucket).
  state.counters["grids_U"] = static_cast<double>(
      recommended_num_grids(bucket_dim, n, r, 30, 1e-6));
}

// r = 2 keeps bucket_dim = 4 (the largest tractable ball dimension here);
// r = 8 is the grid-like extreme with 1-dim buckets.
BENCHMARK(BM_DistortionVsR)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_GridCountVsBucketDim(benchmark::State& state) {
  // Isolated view of Lemma 7: U explodes with the per-bucket dimension.
  const auto bucket_dim = static_cast<std::size_t>(state.range(0));
  std::size_t u = 0;
  for (auto _ : state) {
    u = recommended_num_grids(bucket_dim, 512, 1, 30, 1e-6);
  }
  state.counters["bucket_dim"] = static_cast<double>(bucket_dim);
  state.counters["grids_U"] = static_cast<double>(u);
  state.counters["lemma7_form"] =
      lemma7_grid_bound(bucket_dim, 1, 30, 1e-6);
}
BENCHMARK(BM_GridCountVsBucketDim)
    ->DenseRange(1, 10)
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace mpte::bench
