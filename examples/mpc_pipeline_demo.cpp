// The full Algorithm 2 pipeline on the simulated MPC cluster, with the
// model's cost accounting printed round by round: FJLT, distributed
// quantization, grid broadcast, local path computation, and the edge-dedup
// shuffle — all in a constant number of rounds regardless of n.
//
//   $ ./mpc_pipeline_demo
#include <cstdio>

#include "core/mpc_embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"

int main() {
  using namespace mpte;

  const std::size_t n = 512, d = 128;
  const PointSet points = generate_gaussian_clusters(
      n, d, /*clusters=*/6, /*side=*/100.0, /*stddev=*/2.0, /*seed=*/3);

  // A 16-machine cluster with 1 MiB per machine.
  mpc::ClusterConfig config;
  config.num_machines = 16;
  config.local_memory_bytes = 1 << 20;
  config.enforce_limits = true;  // any model violation throws
  mpc::Cluster cluster(config);

  std::printf("cluster: %zu machines x %zu KiB local memory\n",
              config.num_machines, config.local_memory_bytes / 1024);
  std::printf("input:   %zu points in R^%zu (%zu KiB total)\n\n", n, d,
              n * d * sizeof(double) / 1024);

  MpcEmbedOptions options;
  options.seed = 17;
  options.use_fjlt = true;
  options.fjlt_xi = 0.4;
  const auto result = mpc_embed(cluster, points, options);
  if (!result.ok()) {
    std::printf("mpc_embed failed: %s\n",
                result.status().to_string().c_str());
    return 1;
  }

  std::printf("pipeline: fjlt=%s  dim %zu -> %zu  delta=%llu  r=%u  U=%zu  "
              "retries=%d\n",
              result->fjlt_applied ? "yes" : "no", d, result->dim_used,
              static_cast<unsigned long long>(result->delta_used),
              result->buckets_used, result->grids_used,
              result->retries_used);

  const HstShape shape = hst_shape(result->tree);
  std::printf("tree:    %zu nodes, depth %zu\n", shape.nodes, shape.depth);

  const auto stats = measure_distortion(result->tree,
                                        result->embedded_points, 4000, 1);
  std::printf("quality: min ratio %.3f (>=1: domination), mean %.2f, "
              "max %.2f over %zu pairs\n\n",
              stats.min_ratio, stats.mean_ratio, stats.max_ratio,
              stats.pairs);

  std::printf("===== MPC cost accounting =====\n%s",
              cluster.stats().summary().c_str());
  std::printf("\nrounds total: %zu (constant in n — rerun with any n to "
              "check)\n",
              result->rounds_used);
  return 0;
}
