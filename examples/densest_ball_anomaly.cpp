// Dense-region detection with the tree densest ball (Corollary 1.1).
//
// Scenario: event coordinates stream in (mostly background noise) with a
// hidden concentrated hot-spot. Densest-ball at a target diameter locates
// the hot-spot; the embedding makes it a single tree scan instead of an
// O(n^2) neighborhood count per candidate center.
//
//   $ ./densest_ball_anomaly
#include <cstdio>

#include "apps/densest_ball.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

int main() {
  using namespace mpte;

  // 900 background events + a 100-event hot-spot of width ~3.
  constexpr std::size_t kNoise = 900, kHot = 100;
  PointSet points = generate_uniform_cube(kNoise, 3, 1000.0, 1);
  {
    Rng rng(2);
    const double cx = 400.0, cy = 700.0, cz = 250.0;
    for (std::size_t i = 0; i < kHot; ++i) {
      const double p[3] = {rng.normal(cx, 1.5), rng.normal(cy, 1.5),
                           rng.normal(cz, 1.5)};
      points.push_back(p);
    }
  }
  std::printf("events: %zu background + %zu hot-spot\n", kNoise, kHot);

  const double target_diameter = 12.0;

  // Exact baseline: point-centered radius-D/2 counting, O(n^2).
  Timer exact_timer;
  const auto exact = densest_ball_exact(points, target_diameter / 2.0);
  const double exact_ms = exact_timer.milliseconds();

  // Tree route: one embedding, then one sweep over tree nodes. The tree is
  // allowed the distortion-stretched diameter (bicriteria beta).
  Timer tree_timer;
  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 9;
  const auto embedding = embed(points, options);
  if (!embedding.ok()) {
    std::printf("embed failed: %s\n",
                embedding.status().to_string().c_str());
    return 1;
  }
  const double beta = 16.0;
  const auto tree = densest_ball_tree(
      embedding->tree, beta * target_diameter / embedding->scale_to_input);
  const double tree_ms = tree_timer.milliseconds();

  std::printf("\nexact  (diameter %5.1f): %4zu events around point %zu "
              "[%.2f ms]\n",
              target_diameter, exact.count, exact.center, exact_ms);
  std::printf("tree   (diameter <= %5.1f): %4zu events in one cluster "
              "[%.2f ms, embed included]\n",
              tree.diameter * embedding->scale_to_input, tree.count,
              tree_ms);

  // How much of the true hot-spot did the tree cluster capture? Hot-spot
  // points are indices >= kNoise.
  std::size_t captured = 0;
  for (std::size_t p = kNoise; p < points.size(); ++p) {
    std::size_t cur = embedding->tree.leaf(p);
    while (true) {
      if (cur == tree.center) {
        ++captured;
        break;
      }
      const auto parent = embedding->tree.node(cur).parent;
      if (parent < 0) break;
      cur = static_cast<std::size_t>(parent);
    }
  }
  std::printf("hot-spot capture: %zu / %zu events in the reported cluster\n",
              captured, kHot);
  return 0;
}
