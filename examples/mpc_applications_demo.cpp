// Corollary 1, distributed: EMD, MST, and densest ball computed *inside*
// the MPC model (constant rounds, path records + shuffles — the tree is
// never assembled on one machine), compared against the exact sequential
// baselines.
//
//   $ ./mpc_applications_demo
#include <cstdio>

#include "apps/emd.hpp"
#include "apps/mpc_apps.hpp"
#include "apps/mst.hpp"
#include "apps/densest_ball.hpp"
#include "geometry/generators.hpp"

int main() {
  using namespace mpte;

  mpc::ClusterConfig config;
  config.num_machines = 8;
  config.local_memory_bytes = 1 << 22;
  std::printf("cluster: %zu machines x %zu MiB\n\n", config.num_machines,
              config.local_memory_bytes >> 20);

  MpcEmbedOptions options;
  options.seed = 4;
  options.use_fjlt = false;
  options.delta = 1 << 12;

  // --- Earth-Mover distance -------------------------------------------
  {
    const PointSet a = generate_uniform_cube(96, 3, 50.0, 1);
    const PointSet b = generate_gaussian_clusters(96, 3, 4, 50.0, 2.0, 2);
    mpc::Cluster cluster(config);
    const auto mpc_result = mpc_tree_emd(cluster, a, b, options);
    const double exact = exact_emd(a, b);
    if (mpc_result.ok()) {
      std::printf("EMD   (96 vs 96 points):\n");
      std::printf("  exact (min-cost flow): %10.2f\n", exact);
      std::printf("  MPC tree estimate:     %10.2f   ratio %.2f   "
                  "rounds %zu\n\n",
                  mpc_result->emd, mpc_result->emd / exact,
                  mpc_result->rounds_used);
    }
  }

  // --- Minimum spanning tree ------------------------------------------
  {
    const PointSet points = generate_uniform_cube(400, 3, 50.0, 5);
    mpc::Cluster cluster(config);
    const auto mpc_result = mpc_tree_mst(cluster, points, options);
    const double exact = exact_mst(points).total_length;
    if (mpc_result.ok()) {
      std::printf("MST   (400 points):\n");
      std::printf("  exact (Prim):          %10.2f\n", exact);
      std::printf("  MPC tree-guided:       %10.2f   ratio %.2f   "
                  "rounds %zu   edges %zu\n\n",
                  mpc_result->total_length,
                  mpc_result->total_length / exact,
                  mpc_result->rounds_used, mpc_result->edges.size());
    }
  }

  // --- Densest ball ----------------------------------------------------
  {
    const PointSet points =
        generate_gaussian_clusters(500, 3, 5, 800.0, 1.5, 7);
    const double diameter = 60.0;
    mpc::Cluster cluster(config);
    const auto mpc_result =
        mpc_densest_ball(cluster, points, diameter, options);
    const auto exact = densest_ball_exact(points, diameter / 2.0);
    if (mpc_result.ok()) {
      std::printf("Densest ball (500 points, target diameter %.0f):\n",
                  diameter);
      std::printf("  exact point-centered:  %zu points\n", exact.count);
      std::printf("  MPC cluster:           %zu points within diameter "
                  "%.1f   rounds %zu\n",
                  mpc_result->count, mpc_result->diameter,
                  mpc_result->rounds_used);
    }
  }
  return 0;
}
