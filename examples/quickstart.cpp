// Quickstart: embed a small high-dimensional point set into a tree and
// compare tree distances against true Euclidean distances.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: generate points, call
// embed(), inspect the tree, and query distances.
#include <cstdio>

#include "core/embedder.hpp"
#include "geometry/generators.hpp"
#include "tree/distortion.hpp"
#include "tree/embedding_builder.hpp"

int main() {
  using namespace mpte;

  // 1. Some data: 200 points in R^64 — high-dimensional enough that the
  //    FJLT preprocessing stage engages.
  const PointSet points = generate_gaussian_clusters(
      /*n=*/200, /*dim=*/64, /*clusters=*/4, /*side=*/100.0,
      /*stddev=*/2.0, /*seed=*/7);
  std::printf("input: %zu points in R^%zu\n", points.size(), points.dim());

  // 2. Embed. Defaults follow the paper: FJLT to O(log n) dimensions,
  //    hybrid partitioning with r = Theta(log log n) buckets.
  EmbedOptions options;
  options.seed = 42;
  const auto result = embed(points, options);
  if (!result.ok()) {
    std::printf("embedding failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  const Embedding& embedding = *result;

  std::printf("pipeline: fjlt=%s  dim %zu -> %zu  delta=%llu  r=%u  U=%zu\n",
              embedding.fjlt_applied ? "yes" : "no", points.dim(),
              embedding.dim_used,
              static_cast<unsigned long long>(embedding.delta_used),
              embedding.buckets_used, embedding.grids_used);

  const HstShape shape = hst_shape(embedding.tree);
  std::printf("tree: %zu nodes (%zu internal), depth %zu, max branching %zu\n",
              shape.nodes, shape.internal_nodes, shape.depth,
              shape.max_branching);

  // 3. Distances: dist_T always dominates the true distance; on average it
  //    overshoots by the (poly-logarithmic) distortion.
  std::printf("\n   pair      euclidean      tree(dist_T)   ratio\n");
  for (const auto& [p, q] : {std::pair<std::size_t, std::size_t>{0, 1},
                            {0, 50},
                            {10, 150},
                            {42, 43},
                            {100, 199}}) {
    const double true_dist = l2_distance(points[p], points[q]);
    const double tree_dist = embedding.distance(p, q);
    std::printf("  %3zu-%-3zu   %12.3f   %12.3f   %5.2f\n", p, q, true_dist,
                tree_dist, tree_dist / true_dist);
  }

  // 4. Aggregate distortion over sampled pairs.
  const DistortionStats stats =
      measure_distortion(embedding.tree, embedding.embedded_points,
                         /*max_pairs=*/5000, /*seed=*/1);
  std::printf(
      "\nover %zu pairs: min ratio %.3f (domination: >= 1), mean %.2f, "
      "max %.2f\n",
      stats.pairs, stats.min_ratio, stats.mean_ratio, stats.max_ratio);
  return 0;
}
