// Earth-Mover-distance retrieval over synthetic "images".
//
// A classic EMD application: each image is summarized as a set of feature
// points (here: color-space samples drawn from a per-image palette), and
// image similarity is the EMD between those sets. Exact EMD costs a
// min-cost-flow solve per pair; the tree embedding answers all pairs from
// ONE shared structure in O(n) per pair — the Corollary 1.3 trade.
//
//   $ ./emd_image_retrieval
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/emd.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/embedder.hpp"

namespace {

using namespace mpte;

constexpr std::size_t kImages = 12;
constexpr std::size_t kSamplesPerImage = 24;
constexpr std::size_t kColorDim = 3;  // Lab-like color space

/// An "image": feature samples around a small palette of dominant colors.
PointSet synthesize_image(std::uint64_t seed, std::size_t palette_size) {
  Rng rng(seed);
  PointSet palette(palette_size, kColorDim);
  for (std::size_t c = 0; c < palette_size; ++c) {
    for (std::size_t j = 0; j < kColorDim; ++j) {
      palette.coord(c, j) = rng.uniform(0.0, 255.0);
    }
  }
  PointSet samples(kSamplesPerImage, kColorDim);
  for (std::size_t i = 0; i < kSamplesPerImage; ++i) {
    const auto c = rng.uniform_u64(palette_size);
    for (std::size_t j = 0; j < kColorDim; ++j) {
      samples.coord(i, j) = rng.normal(palette.coord(c, j), 8.0);
    }
  }
  return samples;
}

}  // namespace

int main() {
  using namespace mpte;

  // Image 0 and 1 share a seed family (similar palettes); others differ.
  std::vector<PointSet> images;
  images.push_back(synthesize_image(1000, 3));
  images.push_back(synthesize_image(1000, 4));  // overlapping palette
  for (std::size_t i = 2; i < kImages; ++i) {
    images.push_back(synthesize_image(2000 + 37 * i, 3));
  }

  // One embedding over the union of all images' samples.
  PointSet all;
  for (const PointSet& img : images) {
    for (std::size_t i = 0; i < img.size(); ++i) all.push_back(img[i]);
  }
  EmbedOptions options;
  options.use_fjlt = false;  // 3-d color space
  options.seed = 5;
  const auto embedded = embed(all, options);
  if (!embedded.ok()) {
    std::printf("embed failed: %s\n", embedded.status().to_string().c_str());
    return 1;
  }

  // Tree EMD between image a and b: +1 mass on a's samples, -1 on b's.
  const auto tree_emd_pair = [&](std::size_t a, std::size_t b) {
    std::vector<int> side(all.size(), 0);
    for (std::size_t i = 0; i < kSamplesPerImage; ++i) {
      side[a * kSamplesPerImage + i] = 1;
      side[b * kSamplesPerImage + i] = -1;
    }
    return tree_emd(embedded->tree, side) * embedded->scale_to_input;
  };

  // Retrieval: rank all images against image 0, by tree EMD and by exact
  // EMD, and compare rankings and timings.
  Timer tree_timer;
  std::vector<std::pair<double, std::size_t>> tree_rank;
  for (std::size_t b = 1; b < kImages; ++b) {
    tree_rank.emplace_back(tree_emd_pair(0, b), b);
  }
  const double tree_ms = tree_timer.milliseconds();

  Timer exact_timer;
  std::vector<std::pair<double, std::size_t>> exact_rank;
  for (std::size_t b = 1; b < kImages; ++b) {
    exact_rank.emplace_back(exact_emd(images[0], images[b]), b);
  }
  const double exact_ms = exact_timer.milliseconds();

  std::sort(tree_rank.begin(), tree_rank.end());
  std::sort(exact_rank.begin(), exact_rank.end());

  std::printf("query: image 0;  %zu candidates\n", kImages - 1);
  std::printf("%-28s %-28s\n", "tree-EMD ranking", "exact-EMD ranking");
  for (std::size_t i = 0; i < tree_rank.size(); ++i) {
    std::printf("  img %2zu  emd_T=%9.1f      img %2zu  emd=%9.1f\n",
                tree_rank[i].second, tree_rank[i].first,
                exact_rank[i].second, exact_rank[i].first);
  }
  std::printf("\ntop-1 match: tree says img %zu, exact says img %zu%s\n",
              tree_rank[0].second, exact_rank[0].second,
              tree_rank[0].second == exact_rank[0].second ? "  (agree)"
                                                          : "");
  std::printf("timing: tree %0.2f ms (one shared embedding), exact %0.2f ms "
              "(one flow per pair)\n",
              tree_ms, exact_ms);
  return 0;
}
