// Single-linkage clustering via the tree-embedding MST.
//
// Cutting the k-1 longest edges of a (near-)minimum spanning tree yields
// single-linkage clusters. The embedding-guided MST (Corollary 1.2)
// computes a near-MST without the O(n^2) distance matrix, so the same
// recipe scales; this example recovers planted Gaussian clusters and
// reports agreement with ground truth and with the exact-MST clustering.
//
//   $ ./mst_clustering
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/mst.hpp"
#include "apps/union_find.hpp"
#include "core/embedder.hpp"
#include "geometry/generators.hpp"

namespace {

using namespace mpte;

/// Cuts the k-1 longest edges and labels points by component.
std::vector<std::size_t> cluster_by_mst(const MstResult& mst, std::size_t n,
                                        std::size_t k) {
  MstResult sorted = mst;
  std::sort(sorted.edges.begin(), sorted.edges.end(),
            [](const MstEdge& a, const MstEdge& b) {
              return a.length < b.length;
            });
  UnionFind uf(n);
  // Keep all but the k-1 longest edges.
  for (std::size_t i = 0; i + (k - 1) < sorted.edges.size(); ++i) {
    uf.unite(sorted.edges[i].u, sorted.edges[i].v);
  }
  std::vector<std::size_t> label(n);
  for (std::size_t i = 0; i < n; ++i) label[i] = uf.find(i);
  return label;
}

/// Fraction of point pairs on which two labelings agree (Rand index).
double rand_index(const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b) {
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      agree += (a[i] == a[j]) == (b[i] == b[j]);
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace

int main() {
  using namespace mpte;
  constexpr std::size_t kN = 400;
  constexpr std::size_t kClusters = 5;

  // Planted clusters, well separated relative to their spread.
  const PointSet points = generate_gaussian_clusters(
      kN, /*dim=*/8, kClusters, /*side=*/1000.0, /*stddev=*/4.0, /*seed=*/3);

  // Reference labeling: single linkage on the exact MST.
  const MstResult exact = exact_mst(points);
  const auto exact_labels = cluster_by_mst(exact, kN, kClusters);

  EmbedOptions options;
  options.use_fjlt = false;
  options.seed = 11;
  const auto embedding = embed(points, options);
  if (!embedding.ok()) {
    std::printf("embed failed: %s\n",
                embedding.status().to_string().c_str());
    return 1;
  }
  const MstResult approx = tree_mst(embedding->tree, points);
  const auto tree_labels = cluster_by_mst(approx, kN, kClusters);

  std::printf("n=%zu, planted clusters=%zu\n", kN, kClusters);
  std::printf("exact MST cost:      %10.1f\n", exact.total_length);
  std::printf("tree-guided MST:     %10.1f  (ratio %.3f)\n",
              approx.total_length, approx.total_length / exact.total_length);
  std::printf("clustering agreement (Rand index vs exact-MST clustering): "
              "%.4f\n",
              rand_index(tree_labels, exact_labels));

  // Cluster size histograms.
  const auto sizes = [&](const std::vector<std::size_t>& labels) {
    std::vector<std::size_t> counts;
    std::vector<std::size_t> sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
      std::size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      counts.push_back(j - i);
      i = j;
    }
    std::sort(counts.rbegin(), counts.rend());
    return counts;
  };
  std::printf("cluster sizes (tree):  ");
  for (const std::size_t s : sizes(tree_labels)) std::printf("%zu ", s);
  std::printf("\ncluster sizes (exact): ");
  for (const std::size_t s : sizes(exact_labels)) std::printf("%zu ", s);
  std::printf("\n");
  return 0;
}
